// Package timeseries provides the fixed-interval time-series container and
// operations used by edgescope's workload analysis: resampling, rolling
// aggregation, daily peaks (the billing granularity of the NEP platform),
// autocorrelation, and the seasonality-strength metric the paper uses to
// explain why edge workloads are easier to forecast than cloud workloads.
package timeseries

import (
	"fmt"
	"math"
	"time"

	"edgescope/internal/stats"
)

// Series is a sequence of samples at a fixed interval starting at Start.
// Values are owned by the Series; callers must not mutate them after
// construction unless they created the slice.
//
// A Series can carry a cached running sum of its values (see PrimeStats
// and AddSample) that turns Mean and CV from O(n) re-sums into O(1)
// lookups — the dominant cost of placement feedback and per-VM usage
// summaries before this cache existed. The cache invariant is strict:
// when valid, statsSum is bit-identical to the left-to-right sum
// stats.Mean would compute, so cached and uncached results match to the
// bit. Invalidation rules:
//
//   - Mutators on the receiver (AddInPlace) and writers into a dst
//     (ResampleInto, RollingInto, SliceInto) drop the target's cache.
//   - Clone carries the cache; Slice, Add, Scale, ClampNonNegative and
//     New return fresh Series with no cache.
//   - Mutating Values directly — including through an aliasing view
//     from Slice/SliceInto — bypasses these rules; callers doing that
//     must call InvalidateStats on every Series sharing the array.
//   - Mean and CV never memoize on a cache miss, so concurrent readers
//     of a shared immutable Series stay race-free.
type Series struct {
	Start    time.Time
	Interval time.Duration
	Values   []float64

	statsSum float64 // running sum of Values, valid only when statsOK
	statsOK  bool
}

// New builds a Series. It panics if interval <= 0.
func New(start time.Time, interval time.Duration, values []float64) *Series {
	if interval <= 0 {
		panic("timeseries: non-positive interval")
	}
	return &Series{Start: start, Interval: interval, Values: values}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the time just after the last sample.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Interval)
}

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// Clone returns a deep copy, carrying the stats cache when present.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Start: s.Start, Interval: s.Interval, Values: v,
		statsSum: s.statsSum, statsOK: s.statsOK}
}

// PrimeStats computes and caches the running sum of the current values,
// making subsequent Mean and CV calls O(1). Call it once at synthesis
// time (it is a full pass) on series that will be summarised repeatedly.
// It returns s for chaining.
func (s *Series) PrimeStats() *Series {
	s.statsSum = stats.Sum(s.Values)
	s.statsOK = true
	return s
}

// AddSample appends v, maintaining the running sum so a series built
// sample by sample arrives with its stats cache already primed. The
// cache starts (or restarts) at the empty series, where the sum is
// trivially exact; appending to a non-empty series whose cache was
// invalidated leaves it invalid — re-prime explicitly if needed.
func (s *Series) AddSample(v float64) {
	if len(s.Values) == 0 {
		s.statsSum, s.statsOK = 0, true
	}
	if s.statsOK {
		s.statsSum += v
	}
	s.Values = append(s.Values, v)
}

// InvalidateStats drops the cached running sum. Required after mutating
// Values directly or through an aliasing view (Slice/SliceInto), on
// every Series sharing the backing array.
func (s *Series) InvalidateStats() { s.statsOK = false }

// Slice returns the sub-series of samples [i,j) as a zero-copy view: the
// returned Series aliases s's backing array. Aliasing rules: mutating the
// parent's samples in [i,j) is visible through the view and vice versa;
// appending to either Values does not affect the other. Use Clone (or
// Slice(i,j).Clone()) when an independent copy is required.
func (s *Series) Slice(i, j int) *Series {
	if i < 0 || j > len(s.Values) || i > j {
		sliceBoundsPanic(i, j, len(s.Values))
	}
	return &Series{Start: s.TimeAt(i), Interval: s.Interval, Values: s.Values[i:j:j]}
}

// SliceInto writes the [i,j) view into *dst and returns dst — the
// allocation-free form of Slice for hot loops that recycle one Series
// variable. The same aliasing rules apply.
func (s *Series) SliceInto(dst *Series, i, j int) *Series {
	if i < 0 || j > len(s.Values) || i > j {
		sliceBoundsPanic(i, j, len(s.Values))
	}
	dst.Start, dst.Interval, dst.Values = s.TimeAt(i), s.Interval, s.Values[i:j:j]
	dst.statsOK = false
	return dst
}

func sliceBoundsPanic(i, j, n int) {
	panic(fmt.Sprintf("timeseries: slice bounds [%d,%d) of %d", i, j, n))
}

// Agg selects how a window of samples collapses to one value.
type Agg int

// Aggregation modes for Resample and Rolling.
const (
	AggMean Agg = iota
	AggMax
	AggMin
	AggSum
	AggP95
)

func aggregate(a Agg, window []float64, sc *stats.Scratch) float64 {
	switch a {
	case AggMean:
		return stats.Mean(window)
	case AggMax:
		return stats.Max(window)
	case AggMin:
		return stats.Min(window)
	case AggSum:
		return stats.Sum(window)
	case AggP95:
		return sc.Percentile(window, 95)
	default:
		panic("timeseries: unknown aggregation")
	}
}

// Resample aggregates the series into windows of the given duration. The
// duration must be a positive multiple of the series interval. A trailing
// partial window is aggregated as-is.
func (s *Series) Resample(window time.Duration, a Agg) *Series {
	return s.ResampleInto(&Series{}, window, a)
}

// ResampleInto is Resample with caller-owned storage: the result is written
// into *dst, reusing dst.Values' capacity, and dst is returned. A loop that
// resamples many series can recycle one Series variable and stops allocating
// once its buffer has grown to the largest output. The caller must be done
// with dst's previous contents, and dst must not alias s.
func (s *Series) ResampleInto(dst *Series, window time.Duration, a Agg) *Series {
	if window <= 0 || window%s.Interval != 0 {
		panic("timeseries: window must be a positive multiple of interval")
	}
	k := int(window / s.Interval)
	n := (len(s.Values) + k - 1) / k
	out := dst.Values[:0]
	if cap(out) < n {
		out = make([]float64, 0, n)
	}
	var sc stats.Scratch
	for i := 0; i < len(s.Values); i += k {
		j := i + k
		if j > len(s.Values) {
			j = len(s.Values)
		}
		out = append(out, aggregate(a, s.Values[i:j], &sc))
	}
	dst.Start, dst.Interval, dst.Values = s.Start, window, out
	dst.statsOK = false
	return dst
}

// Rolling applies agg over a sliding window of k samples; output i covers
// input samples [i, i+k). The result has Len()-k+1 samples. It panics if
// k <= 0 or k > Len().
func (s *Series) Rolling(k int, a Agg) *Series {
	return s.RollingInto(&Series{}, k, a)
}

// RollingInto is Rolling with caller-owned storage, under the same buffer
// contract as ResampleInto.
func (s *Series) RollingInto(dst *Series, k int, a Agg) *Series {
	if k <= 0 || k > len(s.Values) {
		panic("timeseries: invalid rolling window")
	}
	n := len(s.Values) - k + 1
	out := dst.Values[:0]
	if cap(out) < n {
		out = make([]float64, n)
	} else {
		out = out[:n]
	}
	var sc stats.Scratch
	for i := range out {
		out[i] = aggregate(a, s.Values[i:i+k], &sc)
	}
	dst.Start, dst.Interval, dst.Values = s.Start, s.Interval, out
	dst.statsOK = false
	return dst
}

// DailyPeaks returns the maximum of each UTC day in the series. NEP bills
// network by the 95th percentile of daily peak bandwidth, so this feeds the
// billing engine directly.
func (s *Series) DailyPeaks() []float64 {
	if len(s.Values) == 0 {
		return nil
	}
	perDay := int(24 * time.Hour / s.Interval)
	if perDay <= 0 {
		perDay = 1
	}
	var peaks []float64
	for i := 0; i < len(s.Values); i += perDay {
		j := i + perDay
		if j > len(s.Values) {
			j = len(s.Values)
		}
		peaks = append(peaks, stats.Max(s.Values[i:j]))
	}
	return peaks
}

// Mean returns the mean of the series values: O(1) from the stats cache
// when primed (bit-identical to the re-sum by the cache invariant),
// O(n) otherwise. A miss never memoizes, so sharing an immutable Series
// across goroutines stays race-free.
func (s *Series) Mean() float64 {
	if s.statsOK {
		if len(s.Values) == 0 {
			return 0
		}
		return s.statsSum / float64(len(s.Values))
	}
	return stats.Mean(s.Values)
}

// MaxValue returns the maximum of the series values.
func (s *Series) MaxValue() float64 { return stats.Max(s.Values) }

// CV returns the coefficient of variation of the series values. The
// stats cache saves the mean pass; the squared-deviation pass is
// unchanged, so cached and uncached results are bit-identical.
func (s *Series) CV() float64 {
	if s.statsOK {
		return stats.CVWithMean(s.Values, s.Mean())
	}
	return stats.CV(s.Values)
}

// ACF returns the autocorrelation of the series at the given lag (in
// samples). It returns 0 when the lag is out of range or variance is zero.
func (s *Series) ACF(lag int) float64 {
	n := len(s.Values)
	if lag <= 0 || lag >= n {
		return 0
	}
	m := stats.Mean(s.Values)
	var num, den float64
	for i := 0; i < n; i++ {
		d := s.Values[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-lag; i++ {
		num += (s.Values[i] - m) * (s.Values[i+lag] - m)
	}
	return num / den
}

// SeasonalMeans returns the mean value at each phase of a cycle of the given
// period (in samples): out[p] is the mean of samples whose index ≡ p mod
// period. It panics if period <= 0.
func (s *Series) SeasonalMeans(period int) []float64 {
	if period <= 0 {
		panic("timeseries: non-positive period")
	}
	sums := make([]float64, period)
	counts := make([]int, period)
	for i, v := range s.Values {
		p := i % period
		sums[p] += v
		counts[p]++
	}
	out := make([]float64, period)
	for p := range out {
		if counts[p] > 0 {
			out[p] = sums[p] / float64(counts[p])
		}
	}
	return out
}

// SeasonalityStrength measures how much of the series variance is explained
// by a cycle of the given period, following the characteristic-based
// clustering formulation (Wang, Smith & Hyndman): 1 - Var(remainder) /
// Var(detrended), clamped to [0,1]. The trend is a centred moving average of
// one period; the seasonal component is the per-phase mean of the detrended
// series. Series shorter than two periods return 0.
func (s *Series) SeasonalityStrength(period int) float64 {
	n := len(s.Values)
	if period <= 1 || n < 2*period {
		return 0
	}
	// Trend: centred moving average with window = period.
	trend := make([]float64, n)
	half := period / 2
	for i := range trend {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		trend[i] = stats.Mean(s.Values[lo:hi])
	}
	detr := make([]float64, n)
	for i := range detr {
		detr[i] = s.Values[i] - trend[i]
	}
	// Seasonal component: per-phase mean of detrended values.
	seasonal := (&Series{Start: s.Start, Interval: s.Interval, Values: detr}).SeasonalMeans(period)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = detr[i] - seasonal[i%period]
	}
	vd := stats.Variance(detr)
	if vd == 0 {
		return 0
	}
	strength := 1 - stats.Variance(resid)/vd
	if strength < 0 {
		return 0
	}
	if strength > 1 {
		return 1
	}
	return strength
}

// Add returns a new series whose values are s + other, which must have the
// same length and interval.
func (s *Series) Add(other *Series) *Series {
	if len(s.Values) != len(other.Values) || s.Interval != other.Interval {
		panic("timeseries: Add shape mismatch")
	}
	v := make([]float64, len(s.Values))
	for i := range v {
		v[i] = s.Values[i] + other.Values[i]
	}
	return &Series{Start: s.Start, Interval: s.Interval, Values: v}
}

// AddInPlace adds other into s sample by sample, mutating s's backing array
// (and therefore every view aliasing it), and returns s. Shapes must match
// as in Add. Accumulation loops should prefer this over Add, which allocates
// a fresh backing array per call. s's stats cache is invalidated (a folded
// sum is not the left-to-right re-sum bit-for-bit); views aliasing s must
// be invalidated by the caller.
func (s *Series) AddInPlace(other *Series) *Series {
	if len(s.Values) != len(other.Values) || s.Interval != other.Interval {
		panic("timeseries: Add shape mismatch")
	}
	s.statsOK = false
	a, b := s.Values, other.Values
	if len(a) == len(b) {
		for i, v := range b {
			a[i] += v
		}
	}
	return s
}

// Scale returns a new series with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	v := make([]float64, len(s.Values))
	for i := range v {
		v[i] = s.Values[i] * f
	}
	return &Series{Start: s.Start, Interval: s.Interval, Values: v}
}

// ClampNonNegative returns a copy with negative values set to zero.
func (s *Series) ClampNonNegative() *Series {
	v := make([]float64, len(s.Values))
	for i, x := range s.Values {
		if x < 0 {
			x = 0
		}
		v[i] = x
	}
	return &Series{Start: s.Start, Interval: s.Interval, Values: v}
}

// IsFinite reports whether every value is finite (no NaN/Inf).
func (s *Series) IsFinite() bool {
	for _, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
