// Package crowd reproduces the paper's crowd-sourced measurement campaign
// (§2.1.1, §3.1, §3.2): a population of volunteer users spread over Chinese
// cities and surrounding county areas runs repeated pings, traceroutes and
// iperf tests against the nearest/3rd-nearest edge sites and the cloud
// regions, and the per-user results aggregate into the paper's Figures 2, 3
// and 5 and Tables 3 and 4.
//
// The campaign is sized entirely by a scenario.CrowdSpec — the population,
// its geography and access mix, and the probe schedule all come from the
// declarative scenario layer, so a new measurement scenario is a data
// change, not a code change here.
package crowd

import (
	"fmt"
	"math"
	"strconv"

	"edgescope/internal/geo"
	"edgescope/internal/netmodel"
	"edgescope/internal/obs"
	"edgescope/internal/par"
	"edgescope/internal/probe"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/stats"
	"edgescope/internal/topology"
)

// User is one crowd participant.
type User struct {
	ID     int
	Metro  geo.City
	Loc    geo.Point
	Access netmodel.Access
	// County reports that the user lives outside the metro proper (in a
	// county-level town 60–300 km away), and is therefore not co-located
	// with any site city. The paper found 69% of its participants were not
	// co-located with any edge or cloud site.
	County bool
}

// GenerateUsers creates the participant population declared by the spec:
// metros drawn population-weighted, a CountyFraction of users displaced
// 60–300 km out of town, and 5G users pinned to Beijing (the paper notes
// almost all its 5G samples came from Beijing due to limited coverage
// elsewhere in 2020). Unset spec fields take the paper defaults.
func GenerateUsers(r *rng.Source, spec scenario.CrowdSpec) []User {
	spec = spec.WithDefaults()
	cities := geo.Cities()
	weights := make([]float64, len(cities))
	for i, c := range cities {
		weights[i] = c.PopulationM
	}
	users := make([]User, 0, spec.Users)
	for i := 0; i < spec.Users; i++ {
		access := netmodel.PickAccess(r, spec.Mix)
		var metro geo.City
		county := false
		if access == netmodel.FiveG {
			metro = geo.MustCity("Beijing")
		} else {
			metro = cities[r.Choice(weights)]
			county = r.Bernoulli(spec.CountyFraction)
		}
		loc := metro.Loc
		if county {
			d := r.Uniform(60, 300)
			theta := r.Uniform(0, 2*math.Pi)
			loc = geo.Point{
				Lat: metro.Loc.Lat + d*math.Cos(theta)/111,
				Lon: metro.Loc.Lon + d*math.Sin(theta)/(111*math.Cos(metro.Loc.Lat*math.Pi/180)),
			}
		} else {
			// In-town scatter of a few km.
			loc = geo.Point{
				Lat: metro.Loc.Lat + r.Normal(0, 0.05),
				Lon: metro.Loc.Lon + r.Normal(0, 0.05),
			}
		}
		users = append(users, User{ID: i, Metro: metro, Loc: loc, Access: access, County: county})
	}
	return users
}

// TargetKind identifies which destination a latency observation measured.
type TargetKind int

// The paper's four latency baselines (§3.1).
const (
	NearestEdge TargetKind = iota
	ThirdNearestEdge
	NearestCloud
	// CloudMember marks one observation of the "all clouds" average: every
	// cloud region is measured and results are averaged per user.
	CloudMember
)

// String names the target kind.
func (k TargetKind) String() string {
	switch k {
	case NearestEdge:
		return "nearest-edge"
	case ThirdNearestEdge:
		return "3rd-nearest-edge"
	case NearestCloud:
		return "nearest-cloud"
	default:
		return "all-clouds"
	}
}

// Observation is one user×target latency measurement: the aggregate of
// Repeats pings plus one traceroute over a freshly built path.
type Observation struct {
	UserID      int
	Access      netmodel.Access
	Target      TargetKind
	SiteID      string
	SiteMetro   string
	DistanceKm  float64 // great-circle user→site
	CityDistKm  float64 // city-level distance (0 when co-located, Table 4)
	MedianRTTMs float64
	MeanRTTMs   float64
	CV          float64
	HopCount    int
	Share1      float64
	Share2      float64
	Share3      float64
	ShareRest   float64
}

// Campaign binds the platforms and participants of one measurement study.
type Campaign struct {
	NEP   *topology.Platform
	Cloud *topology.Platform
	Users []User
	// Spec is the resolved (defaults-applied) crowd slice of the scenario
	// the campaign was built from; it schedules both the ping and the iperf
	// studies.
	Spec scenario.CrowdSpec
	// Tracer, when set, records one span per Observe chunk fan-out. It never
	// affects the observations themselves — the emitted sequence stays
	// byte-identical with and without it.
	Tracer *obs.Tracer
}

// NewCampaign assembles the campaign a scenario declares. Unset spec fields
// take the paper defaults.
func NewCampaign(r *rng.Source, spec scenario.CrowdSpec) *Campaign {
	spec = spec.WithDefaults()
	return &Campaign{
		NEP:   topology.BuildNEP(r.Fork("nep"), topology.NEPOptions{}),
		Cloud: topology.BuildAliCloud(),
		Users: GenerateUsers(r.Fork("users"), spec),
		Spec:  spec,
	}
}

// observeChunk bounds how many users' observations Observe holds in memory
// at once: large enough to keep every worker busy between emission barriers,
// small enough that streaming consumers never see the whole campaign
// materialised.
const observeChunk = 64

// Observe is THE observation walk of the ping campaign — the single source
// every consumer (batch slices, streaming telemetry) derives from. For every
// user it measures the nearest edge site, the 3rd-nearest edge site, the
// nearest cloud region and every cloud region (for the all-clouds average),
// and hands each Observation to sink in user-then-target order.
//
// Users probe in parallel (one worker per CPU) in chunks of observeChunk,
// and each chunk is emitted in order once measured, so memory stays bounded
// by the chunk, not the campaign. Each user draws from an independent
// sub-stream forked deterministically from r before the fan-out, so the
// emitted sequence is byte-identical for a given seed regardless of
// GOMAXPROCS — which is what guarantees batch/stream equivalence by
// construction for every scenario.
//
// Within one user, every target is measured with an *identical* sub-stream
// (common random numbers): the user's access link and local conditions are
// shared across their probes, so coupling the draws both mirrors the
// measurement reality and keeps per-user orderings (nearest edge vs cloud,
// nearest vs 3rd-nearest) stable at small sample counts.
func (c *Campaign) Observe(r *rng.Source, sink func(Observation)) {
	seeds := make([]uint64, len(c.Users))
	for i, u := range c.Users {
		seeds[i] = r.Fork(fmt.Sprintf("user-%d", u.ID)).Uint64()
	}
	// The per-slot observation buffers and probe scratch live for the whole
	// walk: each chunk re-fills slot j's backing arrays (observeUser sizes
	// them exactly on first use), so steady-state chunks allocate nothing
	// and GC pressure stays flat even at stress-scenario populations.
	buf := make([][]Observation, observeChunk)
	scratch := make([]obsScratch, observeChunk)
	for start := 0; start < len(c.Users); start += observeChunk {
		end := start + observeChunk
		if end > len(c.Users) {
			end = len(c.Users)
		}
		chunk := buf[:end-start]
		span := c.Tracer.Begin("observe-chunk", 0)
		c.Tracer.Annotate(span, "users", strconv.Itoa(start)+"-"+strconv.Itoa(end-1))
		par.ForEach(end-start, 0, func(j int) {
			chunk[j] = c.observeUser(seeds[start+j], c.Users[start+j], chunk[j][:0], &scratch[j])
		})
		c.Tracer.End(span)
		for _, o := range chunk {
			for _, ob := range o {
				sink(ob)
			}
		}
	}
}

// obsScratch is one worker slot's reusable probe state: the ping buffer
// VirtualPingInto refills and the selection scratch the median query reuses.
// Both warm up to the per-target sizes on the first user and allocate
// nothing afterwards.
type obsScratch struct {
	ping probe.PingStats
	sel  stats.Scratch
}

// observeUser measures every target of one user from a common-random-number
// sub-stream rebuilt per target off the user's pre-forked seed, appending
// into dst (allocated to the exact per-user size when its capacity is short).
func (c *Campaign) observeUser(seed uint64, u User, dst []Observation, sc *obsScratch) []Observation {
	crn := func() *rng.Source { return rng.New(seed) }
	edgeRank := c.NEP.NearestSites(u.Loc)
	cloudRank := c.Cloud.NearestSites(u.Loc)

	if need := 3 + len(cloudRank); cap(dst) < need {
		dst = make([]Observation, 0, need)
	}
	obs := dst
	obs = append(obs, c.observe(crn(), u, NearestEdge, c.NEP.Sites[edgeRank[0]], sc))
	if len(edgeRank) >= 3 {
		obs = append(obs, c.observe(crn(), u, ThirdNearestEdge, c.NEP.Sites[edgeRank[2]], sc))
	}
	obs = append(obs, c.observe(crn(), u, NearestCloud, c.Cloud.Sites[cloudRank[0]], sc))
	for _, ci := range cloudRank {
		obs = append(obs, c.observe(crn(), u, CloudMember, c.Cloud.Sites[ci], sc))
	}
	return obs
}

// RunLatency is the batch consumer of Observe: it collects the one
// observation walk into a slice.
func (c *Campaign) RunLatency(r *rng.Source) []Observation {
	out := make([]Observation, 0, len(c.Users)*(3+len(c.Cloud.Sites)))
	c.Observe(r, func(o Observation) { out = append(out, o) })
	return out
}

// StreamLatency is the streaming consumer of Observe: each observation is
// handed to emit as soon as its chunk is measured, without materialising
// the campaign in memory. It is the emission hook the telemetry pipeline
// replays through. Both RunLatency and StreamLatency are thin sinks over
// the same walk, so for a given seed the streamed observations are the
// batch slice's, element for element — by construction, for every scenario.
func (c *Campaign) StreamLatency(r *rng.Source, emit func(Observation)) {
	c.Observe(r, emit)
}

func (c *Campaign) observe(r *rng.Source, u User, kind TargetKind, site *topology.Site, sc *obsScratch) Observation {
	dist := geo.Haversine(u.Loc, site.Loc)
	path := netmodel.BuildPath(r, u.Access, site.Class, dist)
	probe.VirtualPingInto(r, path, c.Spec.Repeats, &sc.ping)
	st := &sc.ping
	s1, s2, s3, rest := path.HopShare()

	cityDist := geo.Haversine(u.Metro.Loc, site.City.Loc)
	if !u.County && u.Metro.Name == site.City.Name {
		cityDist = 0
	}
	if u.County {
		cityDist = dist
	}
	return Observation{
		UserID:      u.ID,
		Access:      u.Access,
		Target:      kind,
		SiteID:      site.ID,
		SiteMetro:   site.City.Name,
		DistanceKm:  dist,
		CityDistKm:  cityDist,
		MedianRTTMs: sc.sel.Percentile(st.RTTs, 50), // == st.MedianMs(), no copy alloc
		MeanRTTMs:   mean(st.RTTs),
		CV:          st.CV(),
		HopCount:    path.HopCount(),
		Share1:      s1,
		Share2:      s2,
		Share3:      s3,
		ShareRest:   rest,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ThroughputObs is one user×site×direction iperf measurement (Figure 5).
type ThroughputObs struct {
	UserID     int
	Access     netmodel.Access
	Dir        netmodel.Direction
	DistanceKm float64
	Mbps       float64
}

// RunThroughput executes the iperf campaign the scenario schedules
// (Spec.ThroughputUsers testers × Spec.ThroughputSites edge sites, one site
// per metro to maximise distance spread, down- and uplink each, against
// Spec.ServerMbps servers, with Spec.WiredShare of testers flipped to wired
// access).
func (c *Campaign) RunThroughput(r *rng.Source) []ThroughputObs {
	// One site per distinct metro, round-robin until ThroughputSites.
	seen := map[string]bool{}
	var sites []*topology.Site
	for _, s := range c.NEP.Sites {
		if len(sites) >= c.Spec.ThroughputSites {
			break
		}
		if seen[s.City.Name] {
			continue
		}
		seen[s.City.Name] = true
		sites = append(sites, s)
	}

	// Testers: reuse latency users, flipping some to wired access. As in
	// Observe, each tester gets a pre-forked sub-stream and an output slot,
	// so the parallel fan-out stays deterministic.
	n := c.Spec.ThroughputUsers
	if n > len(c.Users) {
		n = len(c.Users)
	}
	srcs := make([]*rng.Source, n)
	for i := 0; i < n; i++ {
		srcs[i] = r.Fork(fmt.Sprintf("tester-%d", c.Users[i].ID))
	}
	perUser := make([][]ThroughputObs, n)
	par.ForEach(n, 0, func(i int) {
		u, ru := c.Users[i], srcs[i]
		if ru.Bernoulli(c.Spec.WiredShare) {
			u.Access = netmodel.Wired
		}
		obs := make([]ThroughputObs, 0, 2*len(sites))
		for _, s := range sites {
			dist := geo.Haversine(u.Loc, s.Loc)
			path := netmodel.BuildPath(ru, u.Access, netmodel.EdgeSite, dist)
			for _, dir := range []netmodel.Direction{netmodel.Downlink, netmodel.Uplink} {
				res := probe.VirtualIperf(ru, path, dir, c.Spec.ServerMbps)
				obs = append(obs, ThroughputObs{
					UserID:     u.ID,
					Access:     u.Access,
					Dir:        dir,
					DistanceKm: dist,
					Mbps:       res.Mbps,
				})
			}
		}
		perUser[i] = obs
	})
	out := make([]ThroughputObs, 0, n*2*len(sites))
	for _, obs := range perUser {
		out = append(out, obs...)
	}
	return out
}
