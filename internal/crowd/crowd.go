// Package crowd reproduces the paper's crowd-sourced measurement campaign
// (§2.1.1, §3.1, §3.2): a population of volunteer users spread over Chinese
// cities and surrounding county areas runs repeated pings, traceroutes and
// iperf tests against the nearest/3rd-nearest edge sites and the cloud
// regions, and the per-user results aggregate into the paper's Figures 2, 3
// and 5 and Tables 3 and 4.
package crowd

import (
	"fmt"
	"math"

	"edgescope/internal/geo"
	"edgescope/internal/netmodel"
	"edgescope/internal/par"
	"edgescope/internal/probe"
	"edgescope/internal/rng"
	"edgescope/internal/topology"
)

// User is one crowd participant.
type User struct {
	ID     int
	Metro  geo.City
	Loc    geo.Point
	Access netmodel.Access
	// County reports that the user lives outside the metro proper (in a
	// county-level town 60–300 km away), and is therefore not co-located
	// with any site city. The paper found 69% of its participants were not
	// co-located with any edge or cloud site.
	County bool
}

// Options configures user generation.
type Options struct {
	// NumUsers defaults to 158, the paper's participant count.
	NumUsers int
	// WiFiShare, LTEShare, FiveGShare default to the paper's 59/34/7 mix.
	// They must sum to ~1 when set.
	WiFiShare, LTEShare, FiveGShare float64
	// CountyFraction is the probability a user lives outside the metro
	// proper. Defaults to 0.7 (paper: 69% not co-located).
	CountyFraction float64
	// Repeats is the per-target ping count. Defaults to 30.
	Repeats int
}

func (o *Options) fill() {
	if o.NumUsers == 0 {
		o.NumUsers = 158
	}
	if o.WiFiShare == 0 && o.LTEShare == 0 && o.FiveGShare == 0 {
		o.WiFiShare, o.LTEShare, o.FiveGShare = 0.59, 0.34, 0.07
	}
	if o.CountyFraction == 0 {
		o.CountyFraction = 0.7
	}
	if o.Repeats == 0 {
		o.Repeats = 30
	}
}

// GenerateUsers creates the participant population: metros drawn
// population-weighted, a CountyFraction of users displaced 60–300 km out of
// town, and 5G users pinned to Beijing (the paper notes almost all its 5G
// samples came from Beijing due to limited coverage elsewhere in 2020).
func GenerateUsers(r *rng.Source, opts Options) []User {
	opts.fill()
	cities := geo.Cities()
	weights := make([]float64, len(cities))
	for i, c := range cities {
		weights[i] = c.PopulationM
	}
	users := make([]User, 0, opts.NumUsers)
	for i := 0; i < opts.NumUsers; i++ {
		var access netmodel.Access
		switch r.Choice([]float64{opts.WiFiShare, opts.LTEShare, opts.FiveGShare}) {
		case 0:
			access = netmodel.WiFi
		case 1:
			access = netmodel.LTE
		default:
			access = netmodel.FiveG
		}
		var metro geo.City
		county := false
		if access == netmodel.FiveG {
			metro = geo.MustCity("Beijing")
		} else {
			metro = cities[r.Choice(weights)]
			county = r.Bernoulli(opts.CountyFraction)
		}
		loc := metro.Loc
		if county {
			d := r.Uniform(60, 300)
			theta := r.Uniform(0, 2*math.Pi)
			loc = geo.Point{
				Lat: metro.Loc.Lat + d*math.Cos(theta)/111,
				Lon: metro.Loc.Lon + d*math.Sin(theta)/(111*math.Cos(metro.Loc.Lat*math.Pi/180)),
			}
		} else {
			// In-town scatter of a few km.
			loc = geo.Point{
				Lat: metro.Loc.Lat + r.Normal(0, 0.05),
				Lon: metro.Loc.Lon + r.Normal(0, 0.05),
			}
		}
		users = append(users, User{ID: i, Metro: metro, Loc: loc, Access: access, County: county})
	}
	return users
}

// TargetKind identifies which destination a latency observation measured.
type TargetKind int

// The paper's four latency baselines (§3.1).
const (
	NearestEdge TargetKind = iota
	ThirdNearestEdge
	NearestCloud
	// CloudMember marks one observation of the "all clouds" average: every
	// cloud region is measured and results are averaged per user.
	CloudMember
)

// String names the target kind.
func (k TargetKind) String() string {
	switch k {
	case NearestEdge:
		return "nearest-edge"
	case ThirdNearestEdge:
		return "3rd-nearest-edge"
	case NearestCloud:
		return "nearest-cloud"
	default:
		return "all-clouds"
	}
}

// Observation is one user×target latency measurement: the aggregate of
// Repeats pings plus one traceroute over a freshly built path.
type Observation struct {
	UserID      int
	Access      netmodel.Access
	Target      TargetKind
	SiteID      string
	SiteMetro   string
	DistanceKm  float64 // great-circle user→site
	CityDistKm  float64 // city-level distance (0 when co-located, Table 4)
	MedianRTTMs float64
	MeanRTTMs   float64
	CV          float64
	HopCount    int
	Share1      float64
	Share2      float64
	Share3      float64
	ShareRest   float64
}

// Campaign binds the platforms and participants of one measurement study.
type Campaign struct {
	NEP   *topology.Platform
	Cloud *topology.Platform
	Users []User
	// Repeats is the ping count per user×target (paper: 30).
	Repeats int
}

// NewCampaign assembles a campaign with the default paper-scale settings.
func NewCampaign(r *rng.Source, opts Options) *Campaign {
	opts.fill()
	return &Campaign{
		NEP:     topology.BuildNEP(r.Fork("nep"), topology.NEPOptions{}),
		Cloud:   topology.BuildAliCloud(),
		Users:   GenerateUsers(r.Fork("users"), opts),
		Repeats: opts.Repeats,
	}
}

// RunLatency executes the ping campaign: for every user it measures the
// nearest edge site, the 3rd-nearest edge site, the nearest cloud region and
// every cloud region (for the all-clouds average).
//
// Users probe in parallel (one worker per CPU). Each user draws from an
// independent sub-stream forked deterministically from r before the fan-out,
// and results are collected in user order, so the output is byte-identical
// for a given seed regardless of GOMAXPROCS.
//
// Within one user, every target is measured with an *identical* sub-stream
// (common random numbers): the user's access link and local conditions are
// shared across their probes, so coupling the draws both mirrors the
// measurement reality and keeps per-user orderings (nearest edge vs cloud,
// nearest vs 3rd-nearest) stable at small sample counts.
func (c *Campaign) RunLatency(r *rng.Source) []Observation {
	seeds := make([]uint64, len(c.Users))
	for i, u := range c.Users {
		seeds[i] = r.Fork(fmt.Sprintf("user-%d", u.ID)).Uint64()
	}
	perUser := make([][]Observation, len(c.Users))
	par.ForEach(len(c.Users), 0, func(i int) {
		u := c.Users[i]
		crn := func() *rng.Source { return rng.New(seeds[i]) }
		edgeRank := c.NEP.NearestSites(u.Loc)
		cloudRank := c.Cloud.NearestSites(u.Loc)

		obs := make([]Observation, 0, 3+len(cloudRank))
		obs = append(obs, c.observe(crn(), u, NearestEdge, c.NEP.Sites[edgeRank[0]]))
		if len(edgeRank) >= 3 {
			obs = append(obs, c.observe(crn(), u, ThirdNearestEdge, c.NEP.Sites[edgeRank[2]]))
		}
		obs = append(obs, c.observe(crn(), u, NearestCloud, c.Cloud.Sites[cloudRank[0]]))
		for _, ci := range cloudRank {
			obs = append(obs, c.observe(crn(), u, CloudMember, c.Cloud.Sites[ci]))
		}
		perUser[i] = obs
	})
	out := make([]Observation, 0, len(c.Users)*4)
	for _, obs := range perUser {
		out = append(out, obs...)
	}
	return out
}

// StreamLatency is RunLatency's streaming counterpart: it emits each
// observation to the callback as soon as it is measured, in deterministic
// user-then-target order, without materialising the campaign in memory.
// The randomness contract matches RunLatency exactly — the same per-user
// pre-forked sub-streams and common random numbers — so for a given seed
// the emitted observations are identical to RunLatency's slice, element for
// element. It is the emission hook the telemetry pipeline replays through.
func (c *Campaign) StreamLatency(r *rng.Source, emit func(Observation)) {
	for _, u := range c.Users {
		seed := r.Fork(fmt.Sprintf("user-%d", u.ID)).Uint64()
		crn := func() *rng.Source { return rng.New(seed) }
		edgeRank := c.NEP.NearestSites(u.Loc)
		cloudRank := c.Cloud.NearestSites(u.Loc)

		emit(c.observe(crn(), u, NearestEdge, c.NEP.Sites[edgeRank[0]]))
		if len(edgeRank) >= 3 {
			emit(c.observe(crn(), u, ThirdNearestEdge, c.NEP.Sites[edgeRank[2]]))
		}
		emit(c.observe(crn(), u, NearestCloud, c.Cloud.Sites[cloudRank[0]]))
		for _, ci := range cloudRank {
			emit(c.observe(crn(), u, CloudMember, c.Cloud.Sites[ci]))
		}
	}
}

func (c *Campaign) observe(r *rng.Source, u User, kind TargetKind, site *topology.Site) Observation {
	dist := geo.Haversine(u.Loc, site.Loc)
	path := netmodel.BuildPath(r, u.Access, site.Class, dist)
	st := probe.VirtualPing(r, path, c.Repeats)
	s1, s2, s3, rest := path.HopShare()

	cityDist := geo.Haversine(u.Metro.Loc, site.City.Loc)
	if !u.County && u.Metro.Name == site.City.Name {
		cityDist = 0
	}
	if u.County {
		cityDist = dist
	}
	return Observation{
		UserID:      u.ID,
		Access:      u.Access,
		Target:      kind,
		SiteID:      site.ID,
		SiteMetro:   site.City.Name,
		DistanceKm:  dist,
		CityDistKm:  cityDist,
		MedianRTTMs: st.MedianMs(),
		MeanRTTMs:   mean(st.RTTs),
		CV:          st.CV(),
		HopCount:    path.HopCount(),
		Share1:      s1,
		Share2:      s2,
		Share3:      s3,
		ShareRest:   rest,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ThroughputObs is one user×site×direction iperf measurement (Figure 5).
type ThroughputObs struct {
	UserID     int
	Access     netmodel.Access
	Dir        netmodel.Direction
	DistanceKm float64
	Mbps       float64
}

// ThroughputOptions configures RunThroughput.
type ThroughputOptions struct {
	// NumUsers defaults to 25 (a subset of the latency volunteers plus
	// wired vantage points, as in the paper).
	NumUsers int
	// NumSites defaults to 20 edge VMs at different cities.
	NumSites int
	// ServerMbps is the per-VM bandwidth allocation; the paper provisioned
	// 1 Gbps VMs. Defaults to 1000.
	ServerMbps float64
	// WiredShare is the fraction of throughput testers on wired access.
	// Defaults to 0.2.
	WiredShare float64
}

func (o *ThroughputOptions) fill() {
	if o.NumUsers == 0 {
		o.NumUsers = 25
	}
	if o.NumSites == 0 {
		o.NumSites = 20
	}
	if o.ServerMbps == 0 {
		o.ServerMbps = 1000
	}
	if o.WiredShare == 0 {
		o.WiredShare = 0.2
	}
}

// RunThroughput executes the iperf campaign: each selected user measures
// down- and uplink against each of the selected edge sites (one site per
// metro, maximising distance spread).
func (c *Campaign) RunThroughput(r *rng.Source, opts ThroughputOptions) []ThroughputObs {
	opts.fill()

	// One site per distinct metro, round-robin until NumSites.
	seen := map[string]bool{}
	var sites []*topology.Site
	for _, s := range c.NEP.Sites {
		if len(sites) >= opts.NumSites {
			break
		}
		if seen[s.City.Name] {
			continue
		}
		seen[s.City.Name] = true
		sites = append(sites, s)
	}

	// Testers: reuse latency users, flipping some to wired access. As in
	// RunLatency, each tester gets a pre-forked sub-stream and an output
	// slot, so the parallel fan-out stays deterministic.
	n := opts.NumUsers
	if n > len(c.Users) {
		n = len(c.Users)
	}
	srcs := make([]*rng.Source, n)
	for i := 0; i < n; i++ {
		srcs[i] = r.Fork(fmt.Sprintf("tester-%d", c.Users[i].ID))
	}
	perUser := make([][]ThroughputObs, n)
	par.ForEach(n, 0, func(i int) {
		u, ru := c.Users[i], srcs[i]
		if ru.Bernoulli(opts.WiredShare) {
			u.Access = netmodel.Wired
		}
		obs := make([]ThroughputObs, 0, 2*len(sites))
		for _, s := range sites {
			dist := geo.Haversine(u.Loc, s.Loc)
			path := netmodel.BuildPath(ru, u.Access, netmodel.EdgeSite, dist)
			for _, dir := range []netmodel.Direction{netmodel.Downlink, netmodel.Uplink} {
				res := probe.VirtualIperf(ru, path, dir, opts.ServerMbps)
				obs = append(obs, ThroughputObs{
					UserID:     u.ID,
					Access:     u.Access,
					Dir:        dir,
					DistanceKm: dist,
					Mbps:       res.Mbps,
				})
			}
		}
		perUser[i] = obs
	})
	var out []ThroughputObs
	for _, obs := range perUser {
		out = append(out, obs...)
	}
	return out
}
