package crowd

import (
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

// ObservationStore is the columnar observation plane of the latency
// campaign: the fields the latency-family artifacts aggregate over
// (median RTT, CV, hop count, shares, distances, access, target, user) laid
// out as struct-of-arrays columns in emission order, plus prebuilt row
// indexes grouped by access×target. It is built once as the latency
// substrate; every builder that used to re-walk and re-bucket the
// array-of-structs []Observation (Figure 2a/2b, Table 3, Table 4, Figure 3,
// the telemetry batch cross-check) instead scans dense columns through a
// precomputed group index. The original []Observation slice is retained as a
// thin view (View) for consumers that need whole records — the streaming
// sink and the telemetry replay — so crowd.Observe stays the one walk.
//
// Aggregations exploit the walk's emission order: observations arrive
// user-major with ascending user IDs, so each user's rows are one
// contiguous run both globally and within any group index, and per-user
// collapses are run detections instead of map building. The aggregation
// methods mirror the []Observation helpers in aggregate.go value for value
// (pinned by TestObservationStoreMatchesSlice).
type ObservationStore struct {
	view []Observation

	userID    []int32
	access    []uint8
	target    []uint8
	distKm    []float64
	cityKm    []float64
	medianRTT []float64
	cv        []float64
	hops      []int32
	share1    []float64
	share2    []float64
	share3    []float64
	shareRest []float64

	// groups[a][k] lists the row indexes with Access a and Target k, in
	// emission order.
	groups [numAccessCols][numTargetCols][]int32
}

const (
	numAccessCols = 4 // WiFi, LTE, 5G, wired
	numTargetCols = 4 // nearest/3rd-nearest edge, nearest cloud, cloud member
)

// NewObservationStore runs the campaign's one observation walk and builds
// the columnar substrate from it. The RNG draws are exactly RunLatency's.
func NewObservationStore(c *Campaign, r *rng.Source) *ObservationStore {
	return BuildObservationStore(c.RunLatency(r))
}

// BuildObservationStore columnarises an already-materialised observation
// slice. The slice is retained as the store's view; it must not be mutated
// afterwards.
func BuildObservationStore(obs []Observation) *ObservationStore {
	n := len(obs)
	st := &ObservationStore{
		view:      obs,
		userID:    make([]int32, n),
		access:    make([]uint8, n),
		target:    make([]uint8, n),
		distKm:    make([]float64, n),
		cityKm:    make([]float64, n),
		medianRTT: make([]float64, n),
		cv:        make([]float64, n),
		hops:      make([]int32, n),
		share1:    make([]float64, n),
		share2:    make([]float64, n),
		share3:    make([]float64, n),
		shareRest: make([]float64, n),
	}
	// Count group sizes first so every index slice is allocated exactly
	// once at its final length.
	var sizes [numAccessCols][numTargetCols]int32
	for i := range obs {
		sizes[int(obs[i].Access)][int(obs[i].Target)]++
	}
	for a := range st.groups {
		for k := range st.groups[a] {
			if sizes[a][k] > 0 {
				st.groups[a][k] = make([]int32, 0, sizes[a][k])
			}
		}
	}
	for i := range obs {
		o := &obs[i]
		st.userID[i] = int32(o.UserID)
		st.access[i] = uint8(o.Access)
		st.target[i] = uint8(o.Target)
		st.distKm[i] = o.DistanceKm
		st.cityKm[i] = o.CityDistKm
		st.medianRTT[i] = o.MedianRTTMs
		st.cv[i] = o.CV
		st.hops[i] = int32(o.HopCount)
		st.share1[i] = o.Share1
		st.share2[i] = o.Share2
		st.share3[i] = o.Share3
		st.shareRest[i] = o.ShareRest
		st.groups[int(o.Access)][int(o.Target)] = append(st.groups[int(o.Access)][int(o.Target)], int32(i))
	}
	return st
}

// Len returns the number of observations.
func (st *ObservationStore) Len() int { return len(st.view) }

// View returns the array-of-structs view of the store, in emission order.
// It is the same backing slice the store was built from; treat it as
// read-only.
func (st *ObservationStore) View() []Observation { return st.view }

// Group returns the row indexes of one access×target group, in emission
// order. The returned slice is the store's own; treat it as read-only.
func (st *ObservationStore) Group(a netmodel.Access, k TargetKind) []int32 {
	return st.groups[int(a)][int(k)]
}

// perUserMeans collapses one column of an access×target group to one mean
// per user, in ascending user order — the columnar equivalent of perUser in
// aggregate.go (same sums, same division, bit for bit).
func (st *ObservationStore) perUserMeans(a netmodel.Access, k TargetKind, col []float64) []float64 {
	idx := st.groups[int(a)][int(k)]
	if len(idx) == 0 {
		return nil
	}
	out := make([]float64, 0, len(idx))
	for i := 0; i < len(idx); {
		uid := st.userID[idx[i]]
		var sum float64
		n := 0
		for ; i < len(idx) && st.userID[idx[i]] == uid; i++ {
			sum += col[idx[i]]
			n++
		}
		out = append(out, sum/float64(n))
	}
	return out
}

// MedianRTTAcrossUsers returns the median, across users, of each user's
// median RTT to the given target — the bars of Figure 2a.
func (st *ObservationStore) MedianRTTAcrossUsers(a netmodel.Access, k TargetKind) float64 {
	return stats.SummarizeInPlace(st.perUserMeans(a, k, st.medianRTT)).Median()
}

// MedianCVAcrossUsers returns the median, across users, of the per-user RTT
// coefficient of variation — the bars of Figure 2b.
func (st *ObservationStore) MedianCVAcrossUsers(a netmodel.Access, k TargetKind) float64 {
	return stats.SummarizeInPlace(st.perUserMeans(a, k, st.cv)).Median()
}

// HopBreakdown averages the per-hop latency shares across one access×target
// group (Table 3).
func (st *ObservationStore) HopBreakdown(a netmodel.Access, k TargetKind) HopBreakdownRow {
	row := HopBreakdownRow{Access: a, Target: k}
	idx := st.groups[int(a)][int(k)]
	for _, i := range idx {
		row.Share1 += st.share1[i]
		row.Share2 += st.share2[i]
		row.Share3 += st.share3[i]
		row.ShareRest += st.shareRest[i]
	}
	if n := float64(len(idx)); n > 0 {
		row.Share1 /= n
		row.Share2 /= n
		row.Share3 /= n
		row.ShareRest /= n
	}
	return row
}

// CoLocationTable classifies every user and averages RTT and city-level
// distance to the nearest edge/cloud per class (Table 4). Unlike the
// map-based slice helper, users accumulate in ascending-ID order, so the
// class sums are deterministic run to run.
func (st *ObservationStore) CoLocationTable() []Table4Row {
	rows := make([]Table4Row, 3)
	counts := make([]float64, 3)
	var total float64
	n := len(st.view)
	for i := 0; i < n; {
		uid := st.userID[i]
		var rttE, rttC, distE, distC float64
		var haveE, haveC bool
		for ; i < n && st.userID[i] == uid; i++ {
			switch TargetKind(st.target[i]) {
			case NearestEdge:
				rttE, distE, haveE = st.medianRTT[i], st.cityKm[i], true
			case NearestCloud:
				rttC, distC, haveC = st.medianRTT[i], st.cityKm[i], true
			}
		}
		if !haveE || !haveC {
			continue
		}
		var class CoLocClass
		switch {
		case distE == 0 && distC == 0:
			class = BothCoLocated
		case distE == 0:
			class = EdgeCoLocated
		default:
			class = NoneCoLocated
		}
		c := int(class)
		rows[c].RTTEdgeMs += rttE
		rows[c].RTTCloudMs += rttC
		rows[c].DistEdgeKm += distE
		rows[c].DistCloudKm += distC
		counts[c]++
		total++
	}
	for i := range rows {
		rows[i].Class = CoLocClass(i)
		if counts[i] > 0 {
			rows[i].RTTEdgeMs /= counts[i]
			rows[i].RTTCloudMs /= counts[i]
			rows[i].DistEdgeKm /= counts[i]
			rows[i].DistCloudKm /= counts[i]
		}
		if total > 0 {
			rows[i].UserShare = counts[i] / total
		}
	}
	return rows
}

// HopCounts returns the hop-count samples for Figure 3 in emission order:
// edge collects nearest-edge observations, cloud collects nearest-cloud and
// cloud-member observations.
func (st *ObservationStore) HopCounts(edge bool) []float64 {
	var out []float64
	for i, t := range st.target {
		k := TargetKind(t)
		if edge {
			if k != NearestEdge {
				continue
			}
		} else if k != NearestCloud && k != CloudMember {
			continue
		}
		out = append(out, float64(st.hops[i]))
	}
	return out
}

// AppendMedianRTTs appends the median-RTT column (every target) to dst in
// emission order: every access network when all is true, otherwise only
// rows of the given access. It is the telemetry batch cross-check's slice
// builder.
func (st *ObservationStore) AppendMedianRTTs(dst []float64, a netmodel.Access, all bool) []float64 {
	if all {
		return append(dst, st.medianRTT...)
	}
	want := uint8(a)
	for i, acc := range st.access {
		if acc == want {
			dst = append(dst, st.medianRTT[i])
		}
	}
	return dst
}
