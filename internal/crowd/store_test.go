package crowd

import (
	"math"
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

// TestObservationStoreMatchesSlice pins the columnar plane against the
// []Observation view field for field: every column equals its struct field,
// the access×target group indexes partition the rows exactly, and every
// aggregation the latency artifacts consume agrees with its slice-walking
// predecessor in aggregate.go.
func TestObservationStoreMatchesSlice(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		_, obs := testCampaign(t, seed)
		st := BuildObservationStore(obs)

		if st.Len() != len(obs) {
			t.Fatalf("seed %d: Len = %d, want %d", seed, st.Len(), len(obs))
		}
		// Columns are the struct fields.
		for i, o := range obs {
			if int(st.userID[i]) != o.UserID || netmodel.Access(st.access[i]) != o.Access ||
				TargetKind(st.target[i]) != o.Target || st.distKm[i] != o.DistanceKm ||
				st.cityKm[i] != o.CityDistKm || st.medianRTT[i] != o.MedianRTTMs ||
				st.cv[i] != o.CV || int(st.hops[i]) != o.HopCount ||
				st.share1[i] != o.Share1 || st.share2[i] != o.Share2 ||
				st.share3[i] != o.Share3 || st.shareRest[i] != o.ShareRest {
				t.Fatalf("seed %d row %d: columns diverge from %+v", seed, i, o)
			}
		}
		// The view is the original slice.
		if v := st.View(); len(v) != len(obs) || (len(v) > 0 && &v[0] != &obs[0]) {
			t.Fatalf("seed %d: View is not the original slice", seed)
		}

		// Group indexes partition the rows: every row appears in exactly the
		// group of its (access, target), in ascending row order.
		seen := 0
		for a := 0; a < numAccessCols; a++ {
			for k := 0; k < numTargetCols; k++ {
				idx := st.Group(netmodel.Access(a), TargetKind(k))
				for j, ri := range idx {
					o := obs[ri]
					if int(o.Access) != a || int(o.Target) != k {
						t.Fatalf("seed %d: group[%d][%d] row %d has access %v target %v", seed, a, k, ri, o.Access, o.Target)
					}
					if j > 0 && idx[j-1] >= ri {
						t.Fatalf("seed %d: group[%d][%d] not in emission order", seed, a, k)
					}
				}
				seen += len(idx)
			}
		}
		if seen != len(obs) {
			t.Fatalf("seed %d: groups cover %d rows, want %d", seed, seen, len(obs))
		}

		// Aggregations agree with the slice helpers. The per-group functions
		// accumulate in the identical order, so equality is exact.
		accesses := []netmodel.Access{netmodel.WiFi, netmodel.LTE, netmodel.FiveG}
		targets := []TargetKind{NearestEdge, ThirdNearestEdge, NearestCloud, CloudMember}
		for _, a := range accesses {
			for _, k := range targets {
				if got, want := st.MedianRTTAcrossUsers(a, k), MedianRTTAcrossUsers(obs, a, k); got != want {
					t.Fatalf("seed %d %v/%v: MedianRTTAcrossUsers = %v, slice = %v", seed, a, k, got, want)
				}
				if got, want := st.MedianCVAcrossUsers(a, k), MedianCVAcrossUsers(obs, a, k); got != want {
					t.Fatalf("seed %d %v/%v: MedianCVAcrossUsers = %v, slice = %v", seed, a, k, got, want)
				}
				if got, want := st.HopBreakdown(a, k), HopBreakdown(obs, a, k); got != want {
					t.Fatalf("seed %d %v/%v: HopBreakdown = %+v, slice = %+v", seed, a, k, got, want)
				}
			}
		}
		for _, edge := range []bool{true, false} {
			got, want := st.HopCounts(edge), HopCounts(obs, edge)
			if len(got) != len(want) {
				t.Fatalf("seed %d edge=%v: %d hop counts, want %d", seed, edge, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d edge=%v idx %d: %v, want %v", seed, edge, i, got[i], want[i])
				}
			}
		}
		// CoLocationTable: the slice helper iterates a map, so its class sums
		// accumulate in nondeterministic order — equality holds to float
		// round-off, not bit for bit (the store's ascending-user order is the
		// deterministic one).
		gotRows, wantRows := st.CoLocationTable(), CoLocationTable(obs)
		if len(gotRows) != len(wantRows) {
			t.Fatalf("seed %d: %d co-location rows, want %d", seed, len(gotRows), len(wantRows))
		}
		for i := range wantRows {
			g, w := gotRows[i], wantRows[i]
			if g.Class != w.Class {
				t.Fatalf("seed %d row %d: class %v, want %v", seed, i, g.Class, w.Class)
			}
			for _, pair := range [][2]float64{
				{g.UserShare, w.UserShare}, {g.RTTEdgeMs, w.RTTEdgeMs}, {g.RTTCloudMs, w.RTTCloudMs},
				{g.DistEdgeKm, w.DistEdgeKm}, {g.DistCloudKm, w.DistCloudKm},
			} {
				if diff := math.Abs(pair[0] - pair[1]); diff > 1e-9*(1+math.Abs(pair[1])) {
					t.Fatalf("seed %d row %d: co-location field %v, want %v", seed, i, pair[0], pair[1])
				}
			}
		}

		// AppendMedianRTTs: the telemetry batch column.
		all := st.AppendMedianRTTs(nil, 0, true)
		if len(all) != len(obs) {
			t.Fatalf("seed %d: all-access column has %d rows, want %d", seed, len(all), len(obs))
		}
		for _, a := range accesses {
			col := st.AppendMedianRTTs(nil, a, false)
			var want []float64
			for _, o := range obs {
				if o.Access == a {
					want = append(want, o.MedianRTTMs)
				}
			}
			if len(col) != len(want) {
				t.Fatalf("seed %d %v: column has %d rows, want %d", seed, a, len(col), len(want))
			}
			for i := range want {
				if col[i] != want[i] {
					t.Fatalf("seed %d %v idx %d: %v, want %v", seed, a, i, col[i], want[i])
				}
			}
		}
	}
}

// TestNewObservationStoreMatchesRunLatency pins that building the store
// draws exactly what RunLatency draws: same seed, same observations.
func TestNewObservationStoreMatchesRunLatency(t *testing.T) {
	const seed = 11
	r1 := rng.New(seed)
	c1 := NewCampaign(r1, scenario.CrowdSpec{})
	st := NewObservationStore(c1, r1.Fork("latency"))

	r2 := rng.New(seed)
	c2 := NewCampaign(r2, scenario.CrowdSpec{})
	want := c2.RunLatency(r2.Fork("latency"))

	view := st.View()
	if len(view) != len(want) {
		t.Fatalf("store has %d observations, RunLatency %d", len(view), len(want))
	}
	for i := range want {
		if view[i] != want[i] {
			t.Fatalf("observation %d: %+v, want %+v", i, view[i], want[i])
		}
	}
}
