package crowd

import (
	"math"
	"runtime"
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/stats"
)

func testCampaign(t *testing.T, seed uint64) (*Campaign, []Observation) {
	t.Helper()
	r := rng.New(seed)
	c := NewCampaign(r, scenario.CrowdSpec{})
	obs := c.RunLatency(r.Fork("latency"))
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	return c, obs
}

func TestGenerateUsersMix(t *testing.T) {
	r := rng.New(1)
	users := GenerateUsers(r, scenario.CrowdSpec{Users: 2000})
	var wifi, lte, fiveg, county int
	for _, u := range users {
		switch u.Access {
		case netmodel.WiFi:
			wifi++
		case netmodel.LTE:
			lte++
		case netmodel.FiveG:
			fiveg++
			if u.Metro.Name != "Beijing" {
				t.Fatalf("5G user in %s; 2020 coverage pins them to Beijing", u.Metro.Name)
			}
		}
		if u.County {
			county++
		}
	}
	n := float64(len(users))
	if w := float64(wifi) / n; math.Abs(w-0.59) > 0.05 {
		t.Fatalf("WiFi share = %.2f, want ~0.59", w)
	}
	if l := float64(lte) / n; math.Abs(l-0.34) > 0.05 {
		t.Fatalf("LTE share = %.2f, want ~0.34", l)
	}
	if f := float64(fiveg) / n; math.Abs(f-0.07) > 0.03 {
		t.Fatalf("5G share = %.2f, want ~0.07", f)
	}
	if c := float64(county) / n; c < 0.5 || c > 0.8 {
		t.Fatalf("county share = %.2f, want ~0.65 (0.7 of non-5G users)", c)
	}
}

func TestCampaignObservationShape(t *testing.T) {
	c, obs := testCampaign(t, 2)
	// Per user: 1 nearest edge + 1 third edge + 1 nearest cloud + 8 members.
	want := len(c.Users) * (3 + len(c.Cloud.Sites))
	if len(obs) != want {
		t.Fatalf("observations = %d, want %d", len(obs), want)
	}
	for _, o := range obs {
		if o.MedianRTTMs <= 0 {
			t.Fatalf("non-positive RTT in %+v", o)
		}
		if s := o.Share1 + o.Share2 + o.Share3 + o.ShareRest; math.Abs(s-1) > 1e-9 {
			t.Fatalf("hop shares sum to %v", s)
		}
	}
}

func TestFigure2aShape(t *testing.T) {
	_, obs := testCampaign(t, 3)
	for _, a := range []netmodel.Access{netmodel.WiFi, netmodel.LTE} {
		ne := MedianRTTAcrossUsers(obs, a, NearestEdge)
		e3 := MedianRTTAcrossUsers(obs, a, ThirdNearestEdge)
		nc := MedianRTTAcrossUsers(obs, a, NearestCloud)
		ac := MedianRTTAcrossUsers(obs, a, CloudMember)
		if !(ne < nc && nc < ac) {
			t.Fatalf("%v: ordering broken: edge %.1f, cloud %.1f, all-clouds %.1f", a, ne, nc, ac)
		}
		if e3 < ne {
			t.Fatalf("%v: 3rd-nearest edge (%.1f) below nearest (%.1f)", a, e3, ne)
		}
		ratio := nc / ne
		if ratio < 1.15 || ratio > 3.2 {
			t.Fatalf("%v: cloud/edge RTT ratio = %.2f, paper reports 1.4-1.9x", a, ratio)
		}
	}
	// WiFi nearest edge ≈ 10.5 ms in the paper; ours includes county users
	// at up to 300 km, so allow a wider band.
	wifiEdge := MedianRTTAcrossUsers(obs, netmodel.WiFi, NearestEdge)
	if wifiEdge < 6 || wifiEdge > 22 {
		t.Fatalf("WiFi nearest-edge median = %.1f ms", wifiEdge)
	}
	lteEdge := MedianRTTAcrossUsers(obs, netmodel.LTE, NearestEdge)
	if lteEdge < 26 || lteEdge > 48 {
		t.Fatalf("LTE nearest-edge median = %.1f ms, want ~34", lteEdge)
	}
	if lteEdge <= wifiEdge {
		t.Fatal("LTE should be slower than WiFi at the edge")
	}
}

func TestFigure2bJitterShape(t *testing.T) {
	_, obs := testCampaign(t, 4)
	for _, a := range []netmodel.Access{netmodel.WiFi, netmodel.LTE} {
		edgeCV := MedianCVAcrossUsers(obs, a, NearestEdge)
		cloudCV := MedianCVAcrossUsers(obs, a, NearestCloud)
		if edgeCV <= 0 || cloudCV <= 0 {
			t.Fatalf("%v: CVs must be positive", a)
		}
		if cloudCV < 1.8*edgeCV {
			t.Fatalf("%v: cloud CV (%.4f) should be ≫ edge CV (%.4f)", a, cloudCV, edgeCV)
		}
	}
}

func TestTable3HopBreakdown(t *testing.T) {
	_, obs := testCampaign(t, 5)
	wifiEdge := HopBreakdown(obs, netmodel.WiFi, NearestEdge)
	if wifiEdge.Share1 < 0.28 {
		t.Fatalf("WiFi edge 1st-hop share = %.2f, paper reports 44%%", wifiEdge.Share1)
	}
	lteEdge := HopBreakdown(obs, netmodel.LTE, NearestEdge)
	if lteEdge.Share2 < 0.45 {
		t.Fatalf("LTE edge 2nd-hop share = %.2f, paper reports 70%%", lteEdge.Share2)
	}
	// Cloud paths spend more latency beyond the first three hops.
	wifiCloud := HopBreakdown(obs, netmodel.WiFi, NearestCloud)
	if wifiCloud.ShareRest <= wifiEdge.ShareRest {
		t.Fatalf("cloud rest-share (%.2f) should exceed edge (%.2f)",
			wifiCloud.ShareRest, wifiEdge.ShareRest)
	}
	// 5G: nearly all latency in the first three hops to the nearest edge.
	fgEdge := HopBreakdown(obs, netmodel.FiveG, NearestEdge)
	if first3 := fgEdge.Share1 + fgEdge.Share2 + fgEdge.Share3; first3 < 0.6 {
		t.Fatalf("5G edge first-3 share = %.2f, paper reports 98%%", first3)
	}
}

func TestTable4CoLocation(t *testing.T) {
	_, obs := testCampaign(t, 6)
	rows := CoLocationTable(obs)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var shareSum float64
	for _, r := range rows {
		shareSum += r.UserShare
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("class shares sum to %v", shareSum)
	}
	none := rows[NoneCoLocated]
	if none.UserShare < 0.5 || none.UserShare > 0.85 {
		t.Fatalf("none-co-located share = %.2f, paper reports 0.69", none.UserShare)
	}
	// Co-located users have zero city distance by definition.
	if rows[BothCoLocated].DistEdgeKm != 0 || rows[BothCoLocated].DistCloudKm != 0 {
		t.Fatal("both-co-located distances must be zero")
	}
	if rows[EdgeCoLocated].DistEdgeKm != 0 {
		t.Fatal("edge-co-located edge distance must be zero")
	}
	if rows[EdgeCoLocated].UserShare > 0 && rows[EdgeCoLocated].DistCloudKm <= 0 {
		t.Fatal("edge-co-located users must be away from cloud cities")
	}
	// Edge wins on RTT in every class (Table 4's headline).
	for _, r := range rows {
		if r.UserShare == 0 {
			continue
		}
		if r.RTTEdgeMs >= r.RTTCloudMs {
			t.Fatalf("%v: edge RTT %.1f not below cloud %.1f", r.Class, r.RTTEdgeMs, r.RTTCloudMs)
		}
	}
	// None-co-located users sit farther from clouds than from edges.
	if none.DistEdgeKm >= none.DistCloudKm {
		t.Fatalf("none class: edge dist %.0f should be below cloud dist %.0f",
			none.DistEdgeKm, none.DistCloudKm)
	}
}

func TestFigure3HopCounts(t *testing.T) {
	_, obs := testCampaign(t, 7)
	edge := HopCounts(obs, true)
	cloud := HopCounts(obs, false)
	if len(edge) == 0 || len(cloud) == 0 {
		t.Fatal("missing hop-count samples")
	}
	me, mc := stats.Median(edge), stats.Median(cloud)
	if me < 5 || me > 12 {
		t.Fatalf("edge median hops = %v, paper reports 5-12 (median 8)", me)
	}
	if mc < 10 || mc > 17 {
		t.Fatalf("cloud median hops = %v, paper reports 10-16", mc)
	}
	if me >= mc {
		t.Fatal("edge should have fewer hops than cloud")
	}
}

func TestFigure5ThroughputCorrelations(t *testing.T) {
	r := rng.New(8)
	c := NewCampaign(r, scenario.CrowdSpec{})
	tobs := c.RunThroughput(r.Fork("tp"))
	rows := ThroughputCorrelations(tobs)
	if len(rows) == 0 {
		t.Fatal("no correlation rows")
	}
	get := func(a netmodel.Access, d netmodel.Direction) (CorrRow, bool) {
		for _, row := range rows {
			if row.Access == a && row.Dir == d {
				return row, true
			}
		}
		return CorrRow{}, false
	}
	if row, ok := get(netmodel.FiveG, netmodel.Downlink); ok && row.N > 30 {
		if row.Corr > -0.45 {
			t.Fatalf("5G down corr = %.2f, paper reports strong negative", row.Corr)
		}
		if row.MeanMbps < 150 {
			t.Fatalf("5G down mean = %.0f Mbps, want hundreds", row.MeanMbps)
		}
	}
	if row, ok := get(netmodel.Wired, netmodel.Downlink); ok && row.N > 30 {
		if row.Corr > -0.45 {
			t.Fatalf("wired down corr = %.2f, want strong negative", row.Corr)
		}
	}
	for _, a := range []netmodel.Access{netmodel.WiFi, netmodel.LTE} {
		if row, ok := get(a, netmodel.Downlink); ok && row.N > 50 {
			if math.Abs(row.Corr) > 0.4 {
				t.Fatalf("%v down corr = %.2f, paper reports negligible", a, row.Corr)
			}
		}
	}
	if row, ok := get(netmodel.FiveG, netmodel.Uplink); ok && row.N > 30 {
		if row.MeanMbps > 65 {
			t.Fatalf("5G uplink mean = %.0f Mbps, TDD-capped at ~52", row.MeanMbps)
		}
	}
}

func TestRunThroughputSiteSpread(t *testing.T) {
	r := rng.New(9)
	c := NewCampaign(r, scenario.CrowdSpec{ThroughputUsers: 5, ThroughputSites: 10})
	tobs := c.RunThroughput(r.Fork("tp"))
	// 5 users × 10 sites × 2 directions.
	if len(tobs) != 100 {
		t.Fatalf("observations = %d, want 100", len(tobs))
	}
}

func TestTargetKindString(t *testing.T) {
	names := map[TargetKind]string{
		NearestEdge: "nearest-edge", ThirdNearestEdge: "3rd-nearest-edge",
		NearestCloud: "nearest-cloud", CloudMember: "all-clouds",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
	if BothCoLocated.String() == "" || EdgeCoLocated.String() == "" || NoneCoLocated.String() == "" {
		t.Fatal("CoLocClass names empty")
	}
}

// TestCampaignParallelismInvariance pins the determinism contract: the
// campaign fan-out must produce identical observations whether the worker
// pool has one goroutine or many.
func TestCampaignParallelismInvariance(t *testing.T) {
	run := func() ([]Observation, []ThroughputObs) {
		r := rng.New(21)
		c := NewCampaign(r, scenario.CrowdSpec{Users: 40, ThroughputUsers: 8, ThroughputSites: 6})
		return c.RunLatency(r.Fork("latency")),
			c.RunThroughput(r.Fork("tp"))
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	obs1, tobs1 := run()
	runtime.GOMAXPROCS(8)
	obs8, tobs8 := run()
	if len(obs1) != len(obs8) || len(tobs1) != len(tobs8) {
		t.Fatal("observation counts differ across GOMAXPROCS")
	}
	for i := range obs1 {
		if obs1[i] != obs8[i] {
			t.Fatalf("latency observation %d differs across GOMAXPROCS", i)
		}
	}
	for i := range tobs1 {
		if tobs1[i] != tobs8[i] {
			t.Fatalf("throughput observation %d differs across GOMAXPROCS", i)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	_, obs1 := testCampaign(t, 11)
	_, obs2 := testCampaign(t, 11)
	if len(obs1) != len(obs2) {
		t.Fatal("observation counts differ")
	}
	for i := range obs1 {
		if obs1[i] != obs2[i] {
			t.Fatalf("observation %d differs across identical seeds", i)
		}
	}
}

// TestObserveIsTheOneWalk pins the tentpole contract: RunLatency and
// StreamLatency are thin sinks over the single Observe walk, so all three
// emit identical observations in identical order — including across a chunk
// boundary (users > observeChunk).
func TestObserveIsTheOneWalk(t *testing.T) {
	spec := scenario.CrowdSpec{Users: observeChunk + 9, Repeats: 3}
	mk := func() (*Campaign, *rng.Source) {
		r := rng.New(31)
		return NewCampaign(r.Fork("campaign"), spec), r.Fork("latency")
	}

	c1, r1 := mk()
	batch := c1.RunLatency(r1)
	if len(batch) == 0 {
		t.Fatal("no observations")
	}

	c2, r2 := mk()
	var walked []Observation
	c2.Observe(r2, func(o Observation) { walked = append(walked, o) })

	c3, r3 := mk()
	var streamed []Observation
	c3.StreamLatency(r3, func(o Observation) { streamed = append(streamed, o) })

	if len(batch) != len(walked) || len(batch) != len(streamed) {
		t.Fatalf("lengths diverge: batch %d, walk %d, stream %d", len(batch), len(walked), len(streamed))
	}
	for i := range batch {
		if batch[i] != walked[i] || batch[i] != streamed[i] {
			t.Fatalf("observation %d diverges between sinks", i)
		}
	}
}

// TestRunThroughputDeterminism gives the iperf campaign the same pin the
// latency campaign has always had: identical seeds yield identical slices,
// and the parallel fan-out is invariant to GOMAXPROCS — including with
// non-default spec sizing.
func TestRunThroughputDeterminism(t *testing.T) {
	spec := scenario.CrowdSpec{
		Users: 30, Repeats: 4,
		ThroughputUsers: 12, ThroughputSites: 9,
		WiredShare: 0.5,
	}
	run := func() []ThroughputObs {
		r := rng.New(33)
		return NewCampaign(r.Fork("campaign"), spec).RunThroughput(r.Fork("tp"))
	}

	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths = %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d differs across identical seeds", i)
		}
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	if len(serial) != len(parallel) {
		t.Fatal("observation counts differ across GOMAXPROCS")
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("observation %d differs across GOMAXPROCS", i)
		}
	}
	var wired int
	for _, o := range serial {
		if o.Access == netmodel.Wired {
			wired++
		}
	}
	if wired == 0 {
		t.Fatal("WiredShare 0.5 produced no wired testers")
	}
}
