package crowd

import (
	"sort"

	"edgescope/internal/netmodel"
	"edgescope/internal/stats"
)

// perUser collapses observations of one (access, target) pair to one value
// per user. For CloudMember targets, a user's observations over all cloud
// regions are averaged first (the paper's "all clouds" baseline); other
// targets have one observation per user.
func perUser(obs []Observation, access netmodel.Access, target TargetKind, metric func(Observation) float64) []float64 {
	byUser := map[int][]float64{}
	for _, o := range obs {
		if o.Access != access || o.Target != target {
			continue
		}
		byUser[o.UserID] = append(byUser[o.UserID], metric(o))
	}
	ids := make([]int, 0, len(byUser))
	for id := range byUser {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]float64, 0, len(ids))
	for _, id := range ids {
		out = append(out, stats.Mean(byUser[id]))
	}
	return out
}

// MedianRTTAcrossUsers returns the median, across users, of each user's
// median RTT to the given target — the bars of Figure 2a.
func MedianRTTAcrossUsers(obs []Observation, access netmodel.Access, target TargetKind) float64 {
	return stats.SummarizeInPlace(perUser(obs, access, target, func(o Observation) float64 { return o.MedianRTTMs })).Median()
}

// MedianCVAcrossUsers returns the median, across users, of the per-user RTT
// coefficient of variation — the bars of Figure 2b.
func MedianCVAcrossUsers(obs []Observation, access netmodel.Access, target TargetKind) float64 {
	return stats.SummarizeInPlace(perUser(obs, access, target, func(o Observation) float64 { return o.CV })).Median()
}

// HopBreakdownRow is one cell group of Table 3: the mean share of
// end-to-end latency contributed by the first three hops and the rest.
type HopBreakdownRow struct {
	Access                 netmodel.Access
	Target                 TargetKind
	Share1, Share2, Share3 float64
	ShareRest              float64
}

// HopBreakdown averages the per-hop latency shares across users for one
// (access, target) pair.
func HopBreakdown(obs []Observation, access netmodel.Access, target TargetKind) HopBreakdownRow {
	row := HopBreakdownRow{Access: access, Target: target}
	var n float64
	for _, o := range obs {
		if o.Access != access || o.Target != target {
			continue
		}
		row.Share1 += o.Share1
		row.Share2 += o.Share2
		row.Share3 += o.Share3
		row.ShareRest += o.ShareRest
		n++
	}
	if n > 0 {
		row.Share1 /= n
		row.Share2 /= n
		row.Share3 /= n
		row.ShareRest /= n
	}
	return row
}

// CoLocClass partitions users by whether their city hosts edge/cloud sites
// (Table 4).
type CoLocClass int

// Co-location classes in the paper's order.
const (
	BothCoLocated CoLocClass = iota // user city has both edge and cloud sites
	EdgeCoLocated                   // user city has an edge site only
	NoneCoLocated                   // user city has neither
)

// String names the class as in Table 4.
func (c CoLocClass) String() string {
	switch c {
	case BothCoLocated:
		return "U/E & U/C co-located"
	case EdgeCoLocated:
		return "U/E co-located"
	default:
		return "None co-located"
	}
}

// Table4Row aggregates one co-location class.
type Table4Row struct {
	Class       CoLocClass
	UserShare   float64 // fraction of users in the class
	RTTEdgeMs   float64 // average RTT to nearest edge
	RTTCloudMs  float64 // average RTT to nearest cloud
	DistEdgeKm  float64 // average city-level distance to nearest edge
	DistCloudKm float64 // average city-level distance to nearest cloud
}

// CoLocationTable classifies every user and averages RTT and city-level
// distance to the nearest edge/cloud per class, reproducing Table 4.
func CoLocationTable(obs []Observation) []Table4Row {
	type userAgg struct {
		rttE, rttC, distE, distC float64
		haveE, haveC             bool
	}
	users := map[int]*userAgg{}
	for _, o := range obs {
		ua := users[o.UserID]
		if ua == nil {
			ua = &userAgg{}
			users[o.UserID] = ua
		}
		switch o.Target {
		case NearestEdge:
			ua.rttE, ua.distE, ua.haveE = o.MedianRTTMs, o.CityDistKm, true
		case NearestCloud:
			ua.rttC, ua.distC, ua.haveC = o.MedianRTTMs, o.CityDistKm, true
		}
	}
	rows := make([]Table4Row, 3)
	counts := make([]float64, 3)
	var total float64
	for _, ua := range users {
		if !ua.haveE || !ua.haveC {
			continue
		}
		var class CoLocClass
		switch {
		case ua.distE == 0 && ua.distC == 0:
			class = BothCoLocated
		case ua.distE == 0:
			class = EdgeCoLocated
		default:
			class = NoneCoLocated
		}
		i := int(class)
		rows[i].RTTEdgeMs += ua.rttE
		rows[i].RTTCloudMs += ua.rttC
		rows[i].DistEdgeKm += ua.distE
		rows[i].DistCloudKm += ua.distC
		counts[i]++
		total++
	}
	for i := range rows {
		rows[i].Class = CoLocClass(i)
		if counts[i] > 0 {
			rows[i].RTTEdgeMs /= counts[i]
			rows[i].RTTCloudMs /= counts[i]
			rows[i].DistEdgeKm /= counts[i]
			rows[i].DistCloudKm /= counts[i]
		}
		if total > 0 {
			rows[i].UserShare = counts[i] / total
		}
	}
	return rows
}

// HopCounts returns the hop-count samples for Figure 3: edge collects
// nearest-edge observations, cloud collects all cloud observations.
func HopCounts(obs []Observation, edge bool) []float64 {
	var out []float64
	for _, o := range obs {
		isEdge := o.Target == NearestEdge || o.Target == ThirdNearestEdge
		if isEdge == edge && (edge || o.Target == NearestCloud || o.Target == CloudMember) {
			if edge && o.Target != NearestEdge {
				continue // Figure 3 uses the nearest edge only
			}
			out = append(out, float64(o.HopCount))
		}
	}
	return out
}

// CorrRow is one series of Figure 5: the distance↔throughput Pearson
// correlation for an (access, direction) pair.
type CorrRow struct {
	Access   netmodel.Access
	Dir      netmodel.Direction
	Corr     float64
	MeanMbps float64
	N        int
}

// ThroughputCorrelations computes Figure 5's per-series correlation
// coefficients and mean rates.
func ThroughputCorrelations(tobs []ThroughputObs) []CorrRow {
	type key struct {
		a netmodel.Access
		d netmodel.Direction
	}
	groups := map[key][]ThroughputObs{}
	for _, o := range tobs {
		k := key{o.Access, o.Dir}
		groups[k] = append(groups[k], o)
	}
	var rows []CorrRow
	for _, a := range netmodel.AllAccess() {
		for _, d := range []netmodel.Direction{netmodel.Downlink, netmodel.Uplink} {
			g := groups[key{a, d}]
			if len(g) < 3 {
				continue
			}
			var ds, ts []float64
			for _, o := range g {
				ds = append(ds, o.DistanceKm)
				ts = append(ts, o.Mbps)
			}
			rows = append(rows, CorrRow{
				Access:   a,
				Dir:      d,
				Corr:     stats.Pearson(ds, ts),
				MeanMbps: stats.Mean(ts),
				N:        len(g),
			})
		}
	}
	return rows
}
