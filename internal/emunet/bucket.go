// Package emunet is a real-socket network emulator: UDP echo servers with
// injected delay, jitter and loss, and TCP endpoints shaped by a token
// bucket. The measurement tools in internal/probe run against these
// endpoints over the loopback interface, exercising the same Go networking
// code paths an operational deployment of the benchmark would use against
// remote edge/cloud VMs.
//
// The emulator stands in for the volunteer-to-datacenter Internet paths of
// the paper's crowd campaign, which are gated behind the real platform; the
// statistical path model lives in internal/netmodel, and emunet realises a
// single parameterised link faithfully enough that probes measure what the
// model prescribes.
package emunet

import (
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter over bytes. The zero
// value is unusable; use NewTokenBucket.
type TokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens (bytes) per second
	burst   float64 // bucket capacity in bytes
	tokens  float64
	last    time.Time
	nowFunc func() time.Time // test hook
}

// NewTokenBucket builds a bucket admitting rateBytesPerSec with the given
// burst capacity (also in bytes). It panics on non-positive parameters.
func NewTokenBucket(rateBytesPerSec, burst float64) *TokenBucket {
	if rateBytesPerSec <= 0 || burst <= 0 {
		panic("emunet: token bucket parameters must be positive")
	}
	return &TokenBucket{
		rate:    rateBytesPerSec,
		burst:   burst,
		tokens:  burst,
		last:    time.Now(),
		nowFunc: time.Now,
	}
}

// delayFor reserves n tokens and returns how long the caller must wait
// before the reserved bytes conform to the rate. It never blocks itself.
func (tb *TokenBucket) delayFor(n int) time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.nowFunc()
	elapsed := now.Sub(tb.last).Seconds()
	tb.last = now
	tb.tokens += elapsed * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return 0
	}
	// Negative balance: wait until it refills.
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// WaitN blocks until n bytes conform to the configured rate.
func (tb *TokenBucket) WaitN(n int) {
	if d := tb.delayFor(n); d > 0 {
		time.Sleep(d)
	}
}

// MbpsToBytesPerSec converts a rate in megabits per second to bytes per
// second.
func MbpsToBytesPerSec(mbps float64) float64 { return mbps * 1e6 / 8 }
