package emunet

import (
	"sync"
	"time"

	"edgescope/internal/rng"
)

// Link describes the emulated network conditions applied to traffic between
// a probe client and an emulated site endpoint.
type Link struct {
	// OneWayDelay is the base one-way propagation+queueing delay.
	OneWayDelay time.Duration
	// Jitter is the standard deviation of normally distributed per-packet
	// delay noise (applied once per round trip, truncated at zero total).
	Jitter time.Duration
	// Loss is the per-packet loss probability in [0,1].
	Loss float64
	// RateMbps caps throughput; 0 means unshaped.
	RateMbps float64
}

// FromPathSample builds a Link from netmodel path statistics: rttMs is the
// base round-trip time, jitterMs the per-sample noise, loss the end-to-end
// loss probability, and rateMbps the bottleneck rate.
func FromPathSample(rttMs, jitterMs, loss, rateMbps float64) Link {
	return Link{
		OneWayDelay: time.Duration(rttMs / 2 * float64(time.Millisecond)),
		Jitter:      time.Duration(jitterMs * float64(time.Millisecond)),
		Loss:        loss,
		RateMbps:    rateMbps,
	}
}

// sampler wraps an rng.Source with a mutex: emunet servers sample loss and
// jitter from handler goroutines.
type sampler struct {
	mu sync.Mutex
	r  *rng.Source
}

func newSampler(seed uint64) *sampler { return &sampler{r: rng.New(seed)} }

func (s *sampler) drop(p float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Bernoulli(p)
}

// rttDelay returns the full round-trip service delay for one packet.
func (s *sampler) rttDelay(l Link) time.Duration {
	s.mu.Lock()
	noise := s.r.Normal(0, float64(l.Jitter))
	s.mu.Unlock()
	d := 2*l.OneWayDelay + time.Duration(noise)
	if d < 0 {
		d = 0
	}
	return d
}
