package emunet

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Throughput-test protocol: the client sends a one-byte mode, then either
// uploads ('U') for its test duration, or asks the server to download ('D')
// to it until the client closes. Shaping happens at whichever end transmits.
const (
	ModeUpload   byte = 'U'
	ModeDownload byte = 'D'
)

// chunkSize is the transfer unit; small enough for smooth token-bucket
// pacing at the few-Mbps rates used in tests.
const chunkSize = 8 * 1024

// ThroughputServer is an iperf3-like TCP endpoint. For download tests it
// transmits through a token bucket at the link's RateMbps; for upload tests
// it drains the socket (the client shapes).
type ThroughputServer struct {
	ln   net.Listener
	link Link

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewThroughputServer starts the server on a loopback ephemeral port.
func NewThroughputServer(link Link) (*ThroughputServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &ThroughputServer{ln: ln, link: link}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the dialable server address.
func (s *ThroughputServer) Addr() string { return s.ln.Addr().String() }

func (s *ThroughputServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(c net.Conn) {
			defer s.wg.Done()
			defer c.Close()
			s.handle(c)
		}(conn)
	}
}

func (s *ThroughputServer) handle(c net.Conn) {
	mode := make([]byte, 1)
	if _, err := io.ReadFull(c, mode); err != nil {
		return
	}
	switch mode[0] {
	case ModeUpload:
		_, _ = io.Copy(io.Discard, c)
	case ModeDownload:
		s.sendShaped(c)
	}
}

func (s *ThroughputServer) sendShaped(c net.Conn) {
	var bucket *TokenBucket
	if s.link.RateMbps > 0 {
		bucket = NewTokenBucket(MbpsToBytesPerSec(s.link.RateMbps), 4*chunkSize)
	}
	chunk := make([]byte, chunkSize)
	for {
		if bucket != nil {
			bucket.WaitN(len(chunk))
		}
		if _, err := c.Write(chunk); err != nil {
			return // client closed: test over
		}
	}
}

// Close shuts the listener down and waits for handlers to exit.
func (s *ThroughputServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("emunet: throughput server already closed")
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// ShapedWriter rate-limits writes to an underlying writer with a token
// bucket; it is the client-side shaper for upload tests.
type ShapedWriter struct {
	w      io.Writer
	bucket *TokenBucket
}

// NewShapedWriter wraps w at rateMbps (<=0 panics; use the raw writer for
// unshaped traffic).
func NewShapedWriter(w io.Writer, rateMbps float64) *ShapedWriter {
	if rateMbps <= 0 {
		panic("emunet: ShapedWriter requires a positive rate")
	}
	return &ShapedWriter{w: w, bucket: NewTokenBucket(MbpsToBytesPerSec(rateMbps), 4*chunkSize)}
}

// Write conforms p to the configured rate before forwarding, splitting large
// buffers into pacing chunks.
func (sw *ShapedWriter) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		n := len(p)
		if n > chunkSize {
			n = chunkSize
		}
		sw.bucket.WaitN(n)
		k, err := sw.w.Write(p[:n])
		written += k
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}

// SetConnDeadline is a small helper for tests and probes to bound socket
// operations.
func SetConnDeadline(c net.Conn, d time.Duration) error {
	return c.SetDeadline(time.Now().Add(d))
}
