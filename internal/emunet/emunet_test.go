package emunet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestTokenBucketConformance(t *testing.T) {
	// 1 MB/s with 8 KB burst: sending 100 KB must take ~(100-8)/1000 ≈ 92 ms.
	tb := NewTokenBucket(1e6, 8*1024)
	start := time.Now()
	for sent := 0; sent < 100*1024; sent += 4096 {
		tb.WaitN(4096)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond || elapsed > 250*time.Millisecond {
		t.Fatalf("100 KB at 1 MB/s took %v, want ~95 ms", elapsed)
	}
}

func TestTokenBucketBurstPassesImmediately(t *testing.T) {
	tb := NewTokenBucket(1000, 64*1024)
	start := time.Now()
	tb.WaitN(32 * 1024) // within burst
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("burst-sized request should not block")
	}
}

func TestTokenBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTokenBucket(0, 1)
}

func TestTokenBucketDelayNeverNegativeProperty(t *testing.T) {
	if err := quick.Check(func(rate, burst float64, n uint16) bool {
		if rate <= 0 || burst <= 0 || rate > 1e12 || burst > 1e12 {
			return true
		}
		tb := NewTokenBucket(rate, burst)
		return tb.delayFor(int(n)) >= 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMbpsConversion(t *testing.T) {
	if got := MbpsToBytesPerSec(8); got != 1e6 {
		t.Fatalf("8 Mbps = %v B/s, want 1e6", got)
	}
}

func TestFromPathSample(t *testing.T) {
	l := FromPathSample(20, 1.5, 0.01, 100)
	if l.OneWayDelay != 10*time.Millisecond {
		t.Fatalf("one-way delay = %v", l.OneWayDelay)
	}
	if l.Jitter != 1500*time.Microsecond {
		t.Fatalf("jitter = %v", l.Jitter)
	}
	if l.Loss != 0.01 || l.RateMbps != 100 {
		t.Fatal("loss/rate not carried over")
	}
}

// udpPing sends one datagram and waits for the echo; helper for tests.
func udpPing(t *testing.T, addr string, timeout time.Duration) (time.Duration, bool) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("edgescope-ping")
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil {
		return 0, false
	}
	if !bytes.Equal(buf[:n], payload) {
		t.Fatalf("echo payload mismatch: %q", buf[:n])
	}
	return time.Since(start), true
}

func TestUDPEchoDelay(t *testing.T) {
	e, err := NewUDPEcho(Link{OneWayDelay: 15 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rtt, ok := udpPing(t, e.Addr(), time.Second)
	if !ok {
		t.Fatal("echo lost without loss configured")
	}
	if rtt < 28*time.Millisecond || rtt > 90*time.Millisecond {
		t.Fatalf("RTT = %v, want ~30 ms", rtt)
	}
}

func TestUDPEchoTotalLoss(t *testing.T) {
	e, err := NewUDPEcho(Link{Loss: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, ok := udpPing(t, e.Addr(), 100*time.Millisecond); ok {
		t.Fatal("packet survived 100% loss")
	}
}

func TestUDPEchoPartialLoss(t *testing.T) {
	e, err := NewUDPEcho(Link{Loss: 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	lost := 0
	const n = 60
	for i := 0; i < n; i++ {
		if _, ok := udpPing(t, e.Addr(), 120*time.Millisecond); !ok {
			lost++
		}
	}
	if lost < n/5 || lost > 4*n/5 {
		t.Fatalf("lost %d/%d at 50%% loss", lost, n)
	}
}

func TestUDPEchoCloseTwice(t *testing.T) {
	e, err := NewUDPEcho(Link{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err == nil {
		t.Fatal("second Close should error")
	}
}

func TestThroughputServerDownloadShaped(t *testing.T) {
	const rate = 16 // Mbps
	s, err := NewThroughputServer(Link{RateMbps: rate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{ModeDownload}); err != nil {
		t.Fatal(err)
	}
	const dur = 400 * time.Millisecond
	deadline := time.Now().Add(dur)
	_ = conn.SetReadDeadline(deadline)
	var total int
	buf := make([]byte, 32*1024)
	for time.Now().Before(deadline) {
		n, err := conn.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	mbps := float64(total) * 8 / 1e6 / dur.Seconds()
	if mbps < rate*0.6 || mbps > rate*1.5 {
		t.Fatalf("download measured %.1f Mbps, want ~%d", mbps, rate)
	}
}

func TestThroughputServerUploadDrains(t *testing.T) {
	s, err := NewThroughputServer(Link{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{ModeUpload}); err != nil {
		t.Fatal(err)
	}
	// Shape the upload at 16 Mbps for 300 ms and verify the pacing works.
	sw := NewShapedWriter(conn, 16)
	chunk := make([]byte, 8*1024)
	start := time.Now()
	var sent int
	for time.Since(start) < 300*time.Millisecond {
		n, err := sw.Write(chunk)
		sent += n
		if err != nil {
			t.Fatal(err)
		}
	}
	mbps := float64(sent) * 8 / 1e6 / time.Since(start).Seconds()
	if mbps < 9 || mbps > 24 {
		t.Fatalf("upload measured %.1f Mbps, want ~16", mbps)
	}
}

func TestShapedWriterSplitsLargeBuffers(t *testing.T) {
	var buf bytes.Buffer
	sw := NewShapedWriter(&buf, 1000) // effectively unshaped for this size
	big := make([]byte, 50*1024)
	n, err := sw.Write(big)
	if err != nil || n != len(big) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if buf.Len() != len(big) {
		t.Fatal("bytes lost in shaping")
	}
}

func TestShapedWriterPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewShapedWriter(io.Discard, 0)
}

func TestThroughputServerCloseTwice(t *testing.T) {
	s, err := NewThroughputServer(Link{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("second Close should error")
	}
}
