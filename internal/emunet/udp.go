package emunet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// UDPEcho is a UDP echo server that replies to every datagram after the
// link's emulated round-trip service time, dropping packets per the link's
// loss probability. It emulates the ping destination VMs the paper deployed
// on every NEP site and AliCloud region.
type UDPEcho struct {
	pc   net.PacketConn
	link Link
	smp  *sampler

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewUDPEcho starts an echo server on a loopback ephemeral port.
func NewUDPEcho(link Link, seed uint64) (*UDPEcho, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	e := &UDPEcho{pc: pc, link: link, smp: newSampler(seed)}
	e.wg.Add(1)
	go e.serve()
	return e, nil
}

// Addr returns the server's address for clients to dial.
func (e *UDPEcho) Addr() string { return e.pc.LocalAddr().String() }

func (e *UDPEcho) serve() {
	defer e.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := e.pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		if e.smp.drop(e.link.Loss) {
			continue
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		delay := e.smp.rttDelay(e.link)
		e.wg.Add(1)
		go func(addr net.Addr, data []byte, d time.Duration) {
			defer e.wg.Done()
			timer := time.NewTimer(d)
			defer timer.Stop()
			<-timer.C
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if !closed {
				_, _ = e.pc.WriteTo(data, addr)
			}
		}(from, payload, delay)
	}
}

// Close stops the server and waits for in-flight replies to finish.
func (e *UDPEcho) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("emunet: echo server already closed")
	}
	e.closed = true
	e.mu.Unlock()
	err := e.pc.Close()
	e.wg.Wait()
	return err
}
