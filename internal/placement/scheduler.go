package placement

import (
	"math"

	"edgescope/internal/rng"
)

// The request schedulers model stage two of NEP operation: once VMs are
// placed, the *customer* routes end-user requests to them (DNS / HTTP 302).
// §4.3 shows this often goes wrong — one VM of an app runs above the 80%
// safety threshold while siblings idle below 30% — and §5 argues for
// load-aware scheduling that exploits the low inter-site RTTs of §3.1.

// Replica is one schedulable VM of an app, with its service capacity and
// the network delay from the requesting user population.
type Replica struct {
	// CapacityRPS is the request rate the replica sustains at full load.
	CapacityRPS float64
	// DelayMs is the user→replica network delay.
	DelayMs float64
	// Load is the current utilisation in [0,1+); schedulers update it.
	Load float64
}

// Scheduler routes one request to a replica index.
type Scheduler interface {
	Name() string
	Pick(r *rng.Source, replicas []Replica) int
}

// NearestSite always picks the lowest-delay replica — the DNS-style
// geo-routing NEP customers use today.
type NearestSite struct{}

// Name implements Scheduler.
func (NearestSite) Name() string { return "nearest-site" }

// Pick implements Scheduler.
func (NearestSite) Pick(r *rng.Source, replicas []Replica) int {
	best, bestD := 0, math.Inf(1)
	for i, rep := range replicas {
		if rep.DelayMs < bestD {
			best, bestD = i, rep.DelayMs
		}
	}
	return best
}

// LoadAware trades a bounded delay penalty for balance: among replicas
// within DelaySlackMs of the nearest, it picks the least loaded — the GSLB
// approach §5 recommends, viable because nearby edge sites are only a few
// ms apart (§3.1).
type LoadAware struct {
	// DelaySlackMs is how much extra delay the scheduler will accept to
	// offload a hot replica. Zero degenerates to NearestSite.
	DelaySlackMs float64
}

// Name implements Scheduler.
func (s LoadAware) Name() string { return "load-aware" }

// Pick implements Scheduler.
func (s LoadAware) Pick(r *rng.Source, replicas []Replica) int {
	nearest := math.Inf(1)
	for _, rep := range replicas {
		if rep.DelayMs < nearest {
			nearest = rep.DelayMs
		}
	}
	best, bestLoad := -1, math.Inf(1)
	for i, rep := range replicas {
		if rep.DelayMs > nearest+s.DelaySlackMs {
			continue
		}
		if rep.Load < bestLoad {
			best, bestLoad = i, rep.Load
		}
	}
	return best
}

// SimOutcome summarises one scheduling simulation.
type SimOutcome struct {
	SchedulerName string
	// MaxLoad is the peak replica utilisation observed.
	MaxLoad float64
	// LoadGap is max/min mean utilisation across replicas.
	LoadGap float64
	// MeanDelayMs is the request-weighted mean network delay.
	MeanDelayMs float64
	// OverThresholdFrac is the fraction of request-time a replica spent
	// above the 80% safety threshold.
	OverThresholdFrac float64
}

// SimulateScheduling drives nRequests through the scheduler against the
// replica set, decaying load between requests (requests arrive uniformly;
// each adds 1/capacity of load that drains at unit rate). It reproduces the
// §4.3 pathology under NearestSite and its repair under LoadAware.
func SimulateScheduling(r *rng.Source, sched Scheduler, replicas []Replica, nRequests int) SimOutcome {
	reps := make([]Replica, len(replicas))
	copy(reps, replicas)
	sums := make([]float64, len(reps))
	var delaySum, maxLoad float64
	var overCount int
	// Popularity of user regions is skewed: most requests come from the
	// region nearest replica 0 (a hot province), which is what starves
	// nearest-site routing.
	for i := 0; i < nRequests; i++ {
		// Decay all loads a little between arrivals.
		for j := range reps {
			reps[j].Load *= 0.995
		}
		idx := sched.Pick(r, reps)
		if idx < 0 {
			idx = 0
		}
		reps[idx].Load += 1 / reps[idx].CapacityRPS
		sums[idx] += reps[idx].Load
		delaySum += reps[idx].DelayMs
		if reps[idx].Load > maxLoad {
			maxLoad = reps[idx].Load
		}
		if reps[idx].Load > 0.8 {
			overCount++
		}
	}
	mn, mx := math.Inf(1), 0.0
	for j := range reps {
		mean := sums[j] / float64(nRequests)
		if mean < mn {
			mn = mean
		}
		if mean > mx {
			mx = mean
		}
	}
	gap := 0.0
	if mn > 0 {
		gap = mx / mn
	} else if mx > 0 {
		gap = math.Inf(1)
	}
	return SimOutcome{
		SchedulerName:     sched.Name(),
		MaxLoad:           maxLoad,
		LoadGap:           gap,
		MeanDelayMs:       delaySum / float64(nRequests),
		OverThresholdFrac: float64(overCount) / float64(nRequests),
	}
}
