// Package placement implements the two-stage resource allocation the paper
// describes in §2 ("NEP operation"): customers subscribe VMs at province
// granularity, and the platform picks concrete servers — NEP's production
// strategy favours servers with low sales ratio and low observed CPU usage.
// Alternative strategies (best-fit, random, least-loaded) support the
// ablations motivated by §4.3's load-balance findings, and the request
// schedulers model the customer-side end-user traffic scheduling (nearest
// site via DNS/HTTP-302 vs load-aware GSLB).
package placement

import (
	"errors"
	"fmt"

	"edgescope/internal/rng"
	"edgescope/internal/vm"
)

// Request asks for count VMs of a given size in a province ("" = anywhere).
type Request struct {
	VCPUs    int
	MemGB    int
	Province string
	Count    int
}

// Assignment places one VM on a concrete server.
type Assignment struct {
	Site   int
	Server int
}

// ClusterState tracks subscription and usage per server while placing.
type ClusterState struct {
	Sites []*vm.Site
	// SoldCPU / SoldMem are running totals of subscribed resources per
	// (site, server).
	SoldCPU [][]float64
	SoldMem [][]float64
	// UsageEst is the observed mean CPU usage estimate per server (percent)
	// that NEP's strategy consults; starts at zero.
	UsageEst [][]float64
	// provinceSites caches site indices per province.
	provinceSites map[string][]int
}

// NewClusterState initialises bookkeeping for the given physical inventory.
func NewClusterState(sites []*vm.Site) *ClusterState {
	st := &ClusterState{Sites: sites, provinceSites: map[string][]int{}}
	for i, s := range sites {
		n := len(s.Servers)
		st.SoldCPU = append(st.SoldCPU, make([]float64, n))
		st.SoldMem = append(st.SoldMem, make([]float64, n))
		st.UsageEst = append(st.UsageEst, make([]float64, n))
		st.provinceSites[s.Province] = append(st.provinceSites[s.Province], i)
	}
	return st
}

// Fits reports whether a server can still host the requested size. NEP
// oversubscribes CPU mildly (1.25×) but never memory, mirroring common IaaS
// practice.
func (st *ClusterState) Fits(site, server int, req Request) bool {
	srv := st.Sites[site].Servers[server]
	const cpuOversub = 1.25
	if st.SoldCPU[site][server]+float64(req.VCPUs) > float64(srv.CPUCores)*cpuOversub {
		return false
	}
	if st.SoldMem[site][server]+float64(req.MemGB) > float64(srv.MemGB) {
		return false
	}
	return true
}

// Commit records an accepted assignment.
func (st *ClusterState) Commit(a Assignment, req Request) {
	st.SoldCPU[a.Site][a.Server] += float64(req.VCPUs)
	st.SoldMem[a.Site][a.Server] += float64(req.MemGB)
}

// ObserveUsage updates a server's mean-CPU estimate (exponentially
// smoothed), feeding NEP's usage-aware scoring.
func (st *ClusterState) ObserveUsage(site, server int, meanCPUPct float64) {
	const alpha = 0.3
	st.UsageEst[site][server] = (1-alpha)*st.UsageEst[site][server] + alpha*meanCPUPct
}

// salesRatio returns the CPU sales ratio of a server.
func (st *ClusterState) salesRatio(site, server int) float64 {
	srv := st.Sites[site].Servers[server]
	return st.SoldCPU[site][server] / float64(srv.CPUCores)
}

// candidateSites returns the site indices eligible for a request.
func (st *ClusterState) candidateSites(req Request) []int {
	if req.Province == "" {
		out := make([]int, len(st.Sites))
		for i := range out {
			out[i] = i
		}
		return out
	}
	return st.provinceSites[req.Province]
}

// ErrNoCapacity reports that a request cannot be satisfied.
var ErrNoCapacity = errors.New("placement: no server with sufficient capacity")

// Strategy chooses servers for requests.
type Strategy interface {
	// Name identifies the strategy in reports and benches.
	Name() string
	// Place returns one assignment per requested VM, committing each to the
	// state as it goes, or an error when capacity runs out.
	Place(r *rng.Source, st *ClusterState, req Request) ([]Assignment, error)
}

// NEPDefault is the platform's production strategy: among feasible servers
// in the subscribed province, prefer low sales ratio and low observed usage.
type NEPDefault struct{}

// Name implements Strategy.
func (NEPDefault) Name() string { return "nep-default" }

// Place implements Strategy.
func (NEPDefault) Place(r *rng.Source, st *ClusterState, req Request) ([]Assignment, error) {
	return placeN(st, req, func(site, server int) float64 {
		return st.salesRatio(site, server) + st.UsageEst[site][server]/100
	}, false)
}

// BestFit packs VMs onto the fullest feasible server (bin-packing), the
// fragmentation-minimising baseline from the cloud literature.
type BestFit struct{}

// Name implements Strategy.
func (BestFit) Name() string { return "best-fit" }

// Place implements Strategy.
func (BestFit) Place(r *rng.Source, st *ClusterState, req Request) ([]Assignment, error) {
	return placeN(st, req, func(site, server int) float64 {
		return st.salesRatio(site, server)
	}, true)
}

// Random places each VM on a uniformly random feasible server.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Place implements Strategy.
func (Random) Place(r *rng.Source, st *ClusterState, req Request) ([]Assignment, error) {
	var out []Assignment
	one := Request{VCPUs: req.VCPUs, MemGB: req.MemGB, Province: req.Province, Count: 1}
	var cands []Assignment // reused across the request's VMs
	for k := 0; k < req.Count; k++ {
		cands = cands[:0]
		for _, si := range st.candidateSites(one) {
			for sj := range st.Sites[si].Servers {
				if st.Fits(si, sj, one) {
					cands = append(cands, Assignment{si, sj})
				}
			}
		}
		if len(cands) == 0 {
			return out, fmt.Errorf("%w (placed %d of %d)", ErrNoCapacity, k, req.Count)
		}
		a := cands[r.IntN(len(cands))]
		st.Commit(a, one)
		out = append(out, a)
	}
	return out, nil
}

// LeastLoaded spreads VMs onto the server with the lowest observed usage,
// ignoring sales ratio (a usage-only ablation of NEPDefault).
type LeastLoaded struct{}

// Name implements Strategy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Place implements Strategy.
func (LeastLoaded) Place(r *rng.Source, st *ClusterState, req Request) ([]Assignment, error) {
	return placeN(st, req, func(site, server int) float64 {
		return st.UsageEst[site][server]
	}, false)
}

// placeN picks, once per VM, the best feasible server under the strategy's
// score (descending reverses the order) and commits it. The scored-ranking
// strategies only ever consume the top of the ranking, so placeN runs a
// single stable min scan — first candidate wins ties, exactly the element a
// stable sort would have put at index 0 — instead of sorting the whole
// candidate set per VM, and scores each candidate once instead of twice per
// comparison. Candidates are enumerated in (site, server) order, so the
// tie-break matches the former sort-based implementation choice for choice.
func placeN(st *ClusterState, req Request, score func(site, server int) float64, descending bool) ([]Assignment, error) {
	var out []Assignment
	one := Request{VCPUs: req.VCPUs, MemGB: req.MemGB, Province: req.Province, Count: 1}
	for k := 0; k < req.Count; k++ {
		best := Assignment{Site: -1}
		var bestScore float64
		for _, si := range st.candidateSites(one) {
			for sj := range st.Sites[si].Servers {
				if !st.Fits(si, sj, one) {
					continue
				}
				s := score(si, sj)
				if best.Site < 0 || (descending && s > bestScore) || (!descending && s < bestScore) {
					best = Assignment{Site: si, Server: sj}
					bestScore = s
				}
			}
		}
		if best.Site < 0 {
			return out, fmt.Errorf("%w (placed %d of %d)", ErrNoCapacity, k, req.Count)
		}
		st.Commit(best, one)
		out = append(out, best)
	}
	return out, nil
}
