package placement

import (
	"sort"

	"edgescope/internal/stats"
	"edgescope/internal/vm"
)

// Cross-site VM migration is the rebalancing lever §4.2/§4.3 and §5
// repeatedly point to ("we envision that dynamic VM migration can better
// balance the across-server resource usage"). The rebalancer below is
// deliberately simple — greedy hottest-to-coldest moves — because the goal
// is to quantify the opportunity the paper identifies, and its cost (bytes
// moved, estimated migration time), not to propose a novel algorithm.

// Migration is one planned VM move.
type Migration struct {
	VMIndex int
	From    Assignment
	To      Assignment
	MemGB   int
}

// RebalanceResult summarises a rebalancing plan.
type RebalanceResult struct {
	Migrations []Migration
	// GapBefore/GapAfter are the P95/P5 ratios of per-server load (vCPU ×
	// mean CPU, normalised by cores) before and after applying the plan.
	GapBefore float64
	GapAfter  float64
	// MovedGB is the total memory footprint migrated; EstSeconds estimates
	// total migration time at linkGbps plus a fixed per-move stop-and-copy
	// overhead (live migration takes tens of seconds per the paper's
	// discussion of its QoS impact).
	MovedGB    float64
	EstSeconds float64
}

// serverKey identifies a server within a dataset.
type serverKey struct{ site, server int }

// RebalanceCPU plans up to maxMoves migrations on a dataset's placement,
// moving load from the hottest servers to the coldest feasible ones. The
// dataset itself is not mutated; the plan records what would move.
func RebalanceCPU(d *vm.Dataset, maxMoves int, linkGbps float64) RebalanceResult {
	if linkGbps <= 0 {
		linkGbps = 10
	}
	// Load model: a VM contributes vCPUs × meanCPU% to its server; server
	// load is that sum over physical cores.
	type srvState struct {
		key   serverKey
		cores float64
		load  float64
		vms   []int
	}
	states := map[serverKey]*srvState{}
	for si, s := range d.Sites {
		for ji, srv := range s.Servers {
			k := serverKey{si, ji}
			states[k] = &srvState{key: k, cores: float64(srv.CPUCores)}
		}
	}
	vmLoad := make([]float64, len(d.VMs))
	for i, v := range d.VMs {
		k := serverKey{v.Site, v.Server}
		st := states[k]
		vmLoad[i] = float64(v.VCPUs) * v.MeanCPU() / 100
		st.load += vmLoad[i]
		st.vms = append(st.vms, i)
	}
	ordered := make([]*srvState, 0, len(states))
	for _, st := range states {
		ordered = append(ordered, st)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].key.site != ordered[b].key.site {
			return ordered[a].key.site < ordered[b].key.site
		}
		return ordered[a].key.server < ordered[b].key.server
	})

	util := func(st *srvState) float64 { return st.load / st.cores }
	gap := func() float64 {
		us := make([]float64, len(ordered))
		for i, st := range ordered {
			us[i] = util(st)
		}
		return stats.GapRatio(us, 1e-4)
	}

	res := RebalanceResult{GapBefore: gap()}
	for move := 0; move < maxMoves; move++ {
		// Hottest and coldest servers.
		var hot, cold *srvState
		for _, st := range ordered {
			if hot == nil || util(st) > util(hot) {
				hot = st
			}
			if cold == nil || util(st) < util(cold) {
				cold = st
			}
		}
		if hot == nil || cold == nil || hot == cold {
			break
		}
		if util(hot)-util(cold) < 0.02 {
			break // balanced enough
		}
		// Pick the hot server's VM whose move shrinks the spread most:
		// the largest load that still keeps cold below hot's new level.
		best := -1
		for _, vi := range hot.vms {
			l := vmLoad[vi]
			if util(cold)+l/cold.cores < util(hot)-l/hot.cores+0.02 {
				if best < 0 || l > vmLoad[best] {
					best = vi
				}
			}
		}
		if best < 0 {
			break
		}
		v := d.VMs[best]
		res.Migrations = append(res.Migrations, Migration{
			VMIndex: best,
			From:    Assignment{hot.key.site, hot.key.server},
			To:      Assignment{cold.key.site, cold.key.server},
			MemGB:   v.MemGB,
		})
		res.MovedGB += float64(v.MemGB)
		hot.load -= vmLoad[best]
		cold.load += vmLoad[best]
		for i, vi := range hot.vms {
			if vi == best {
				hot.vms = append(hot.vms[:i], hot.vms[i+1:]...)
				break
			}
		}
		cold.vms = append(cold.vms, best)
	}
	res.GapAfter = gap()
	const perMoveOverheadSec = 20 // stop-and-copy + warm-up, per §5's "tens of seconds"
	res.EstSeconds = res.MovedGB*8/linkGbps + float64(len(res.Migrations))*perMoveOverheadSec
	return res
}
