package placement

import (
	"errors"
	"math"
	"testing"

	"edgescope/internal/rng"
	"edgescope/internal/vm"
)

func twoSiteState() *ClusterState {
	return NewClusterState([]*vm.Site{
		{Name: "gd-1", Province: "Guangdong", Servers: []vm.Server{
			{CPUCores: 64, MemGB: 256}, {CPUCores: 64, MemGB: 256},
		}},
		{Name: "bj-1", Province: "Beijing", Servers: []vm.Server{
			{CPUCores: 64, MemGB: 256},
		}},
	})
}

func TestFitsRespectsMemoryStrictly(t *testing.T) {
	st := twoSiteState()
	req := Request{VCPUs: 8, MemGB: 256, Count: 1}
	if !st.Fits(0, 0, req) {
		t.Fatal("should fit exactly")
	}
	st.Commit(Assignment{0, 0}, req)
	if st.Fits(0, 0, Request{VCPUs: 1, MemGB: 1}) {
		t.Fatal("memory must not oversubscribe")
	}
}

func TestFitsAllowsCPUOversubscription(t *testing.T) {
	st := twoSiteState()
	req := Request{VCPUs: 64, MemGB: 64, Count: 1}
	st.Commit(Assignment{0, 0}, req)
	// 64 sold of 64 cores; 1.25× oversub admits 16 more.
	if !st.Fits(0, 0, Request{VCPUs: 16, MemGB: 16}) {
		t.Fatal("mild CPU oversubscription should be allowed")
	}
	if st.Fits(0, 0, Request{VCPUs: 17, MemGB: 16}) {
		t.Fatal("oversubscription cap exceeded")
	}
}

func TestProvinceFiltering(t *testing.T) {
	st := twoSiteState()
	r := rng.New(1)
	as, err := NEPDefault{}.Place(r, st, Request{VCPUs: 4, MemGB: 16, Province: "Beijing", Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		if a.Site != 1 {
			t.Fatalf("placed outside Beijing: %+v", a)
		}
	}
}

func TestNoCapacityError(t *testing.T) {
	st := twoSiteState()
	r := rng.New(2)
	_, err := NEPDefault{}.Place(r, st, Request{VCPUs: 64, MemGB: 256, Province: "Beijing", Count: 3})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestUnknownProvinceFails(t *testing.T) {
	st := twoSiteState()
	_, err := Random{}.Place(rng.New(3), st, Request{VCPUs: 1, MemGB: 1, Province: "Atlantis", Count: 1})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestNEPDefaultPrefersEmptyServers(t *testing.T) {
	st := twoSiteState()
	r := rng.New(4)
	// Load server (0,0) heavily.
	st.Commit(Assignment{0, 0}, Request{VCPUs: 48, MemGB: 128})
	st.ObserveUsage(0, 0, 60)
	as, err := NEPDefault{}.Place(r, st, Request{VCPUs: 8, MemGB: 32, Province: "Guangdong", Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Server != 1 {
		t.Fatalf("NEPDefault picked loaded server %d", as[0].Server)
	}
}

func TestBestFitPacksFullest(t *testing.T) {
	st := twoSiteState()
	r := rng.New(5)
	st.Commit(Assignment{0, 1}, Request{VCPUs: 32, MemGB: 64})
	as, err := BestFit{}.Place(r, st, Request{VCPUs: 8, MemGB: 32, Province: "Guangdong", Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Server != 1 {
		t.Fatalf("BestFit picked emptier server %d", as[0].Server)
	}
}

func TestLeastLoadedFollowsUsage(t *testing.T) {
	st := twoSiteState()
	r := rng.New(6)
	st.ObserveUsage(0, 0, 80)
	st.ObserveUsage(0, 1, 5)
	as, err := LeastLoaded{}.Place(r, st, Request{VCPUs: 4, MemGB: 8, Province: "Guangdong", Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if as[0].Server != 1 {
		t.Fatalf("LeastLoaded picked hot server")
	}
}

func TestRandomPlacesEverywhere(t *testing.T) {
	st := twoSiteState()
	r := rng.New(7)
	seen := map[int]bool{}
	as, err := Random{}.Place(r, st, Request{VCPUs: 2, MemGB: 4, Count: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		seen[a.Site] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatal("random placement never used one of the sites")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{NEPDefault{}, BestFit{}, Random{}, LeastLoaded{}} {
		if s.Name() == "" {
			t.Fatal("empty strategy name")
		}
	}
}

func TestObserveUsageSmooths(t *testing.T) {
	st := twoSiteState()
	st.ObserveUsage(0, 0, 100)
	first := st.UsageEst[0][0]
	st.ObserveUsage(0, 0, 100)
	if !(first > 0 && st.UsageEst[0][0] > first && st.UsageEst[0][0] < 100) {
		t.Fatalf("smoothing broken: %v → %v", first, st.UsageEst[0][0])
	}
}

// --- scheduler tests ---

func replicas() []Replica {
	// Replica 0 is nearest to the hot user region; others a few ms away,
	// matching §3.1's low inter-site RTTs.
	return []Replica{
		{CapacityRPS: 100, DelayMs: 10},
		{CapacityRPS: 100, DelayMs: 13},
		{CapacityRPS: 100, DelayMs: 14},
		{CapacityRPS: 100, DelayMs: 18},
	}
}

func TestNearestSiteOverloadsHotReplica(t *testing.T) {
	out := SimulateScheduling(rng.New(8), NearestSite{}, replicas(), 5000)
	// The paper's Figure 12b pathology: one VM above the 80% threshold
	// while siblings idle.
	if out.MaxLoad < 0.8 {
		t.Fatalf("nearest-site max load = %.2f, expected overload", out.MaxLoad)
	}
	if !math.IsInf(out.LoadGap, 1) && out.LoadGap < 3 {
		t.Fatalf("nearest-site load gap = %.1f, expected severe imbalance", out.LoadGap)
	}
}

func TestLoadAwareBalances(t *testing.T) {
	near := SimulateScheduling(rng.New(9), NearestSite{}, replicas(), 5000)
	bal := SimulateScheduling(rng.New(9), LoadAware{DelaySlackMs: 6}, replicas(), 5000)
	if bal.MaxLoad >= near.MaxLoad {
		t.Fatalf("load-aware max load %.2f not below nearest-site %.2f", bal.MaxLoad, near.MaxLoad)
	}
	if !math.IsInf(near.LoadGap, 1) && bal.LoadGap >= near.LoadGap {
		t.Fatalf("load-aware gap %.1f not below nearest-site %.1f", bal.LoadGap, near.LoadGap)
	}
	// The price: bounded extra delay, no more than the slack.
	if bal.MeanDelayMs > near.MeanDelayMs+6 {
		t.Fatalf("load-aware delay %.1f exceeded slack over %.1f", bal.MeanDelayMs, near.MeanDelayMs)
	}
	if bal.OverThresholdFrac > near.OverThresholdFrac {
		t.Fatal("load-aware should reduce time above the 80% threshold")
	}
}

func TestLoadAwareZeroSlackDegenerates(t *testing.T) {
	a := SimulateScheduling(rng.New(10), NearestSite{}, replicas(), 2000)
	b := SimulateScheduling(rng.New(10), LoadAware{DelaySlackMs: 0}, replicas(), 2000)
	if math.Abs(a.MeanDelayMs-b.MeanDelayMs) > 1e-9 {
		t.Fatal("zero-slack LoadAware should match NearestSite delays")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (NearestSite{}).Name() == "" || (LoadAware{}).Name() == "" {
		t.Fatal("scheduler names empty")
	}
}
