package placement

import (
	"testing"
	"time"

	"edgescope/internal/timeseries"
	"edgescope/internal/vm"
)

// unbalancedDataset puts three hot VMs on one server and nothing on the
// others.
func unbalancedDataset() *vm.Dataset {
	t0 := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	mk := func(level float64) *timeseries.Series {
		return timeseries.New(t0, 5*time.Minute, []float64{level, level, level})
	}
	d := &vm.Dataset{
		Platform: "NEP",
		Start:    t0,
		Duration: 15 * time.Minute,
		Sites: []*vm.Site{
			{Name: "a", Province: "Guangdong", Servers: []vm.Server{
				{CPUCores: 64, MemGB: 256}, {CPUCores: 64, MemGB: 256},
			}},
			{Name: "b", Province: "Guangdong", Servers: []vm.Server{
				{CPUCores: 64, MemGB: 256},
			}},
		},
	}
	for i := 0; i < 3; i++ {
		d.VMs = append(d.VMs, &vm.VM{
			ID: i, App: 0, Site: 0, Server: 0,
			VCPUs: 16, MemGB: 64, DiskGB: 100,
			CPU: mk(80), PublicBW: mk(100),
		})
	}
	// One cold VM on the second server so every server has a utilisation.
	d.VMs = append(d.VMs, &vm.VM{
		ID: 3, App: 1, Site: 0, Server: 1,
		VCPUs: 4, MemGB: 16, DiskGB: 50,
		CPU: mk(2), PublicBW: mk(5),
	})
	return d
}

func TestRebalanceReducesGap(t *testing.T) {
	d := unbalancedDataset()
	res := RebalanceCPU(d, 10, 10)
	if len(res.Migrations) == 0 {
		t.Fatal("no migrations planned for a pathological imbalance")
	}
	if res.GapAfter >= res.GapBefore {
		t.Fatalf("gap did not shrink: %.1f → %.1f", res.GapBefore, res.GapAfter)
	}
	// The plan must not mutate the dataset.
	if d.VMs[0].Server != 0 || d.VMs[0].Site != 0 {
		t.Fatal("RebalanceCPU mutated the dataset")
	}
}

func TestRebalanceCostAccounting(t *testing.T) {
	res := RebalanceCPU(unbalancedDataset(), 10, 10)
	var gb float64
	for _, m := range res.Migrations {
		gb += float64(m.MemGB)
		if m.From == m.To {
			t.Fatal("no-op migration planned")
		}
	}
	if gb != res.MovedGB {
		t.Fatalf("MovedGB %.0f inconsistent with plan %.0f", res.MovedGB, gb)
	}
	// 20 s per move plus transfer time.
	if res.EstSeconds < 20*float64(len(res.Migrations)) {
		t.Fatalf("EstSeconds %.0f below per-move overhead", res.EstSeconds)
	}
}

func TestRebalanceRespectsBudget(t *testing.T) {
	res := RebalanceCPU(unbalancedDataset(), 1, 10)
	if len(res.Migrations) > 1 {
		t.Fatalf("budget exceeded: %d moves", len(res.Migrations))
	}
}

func TestRebalanceBalancedClusterNoMoves(t *testing.T) {
	d := unbalancedDataset()
	// Make all VMs identical and spread them.
	d.VMs[0].Server = 0
	d.VMs[1].Server = 1
	d.VMs[2].Site, d.VMs[2].Server = 1, 0
	for _, v := range d.VMs[:3] {
		for i := range v.CPU.Values {
			v.CPU.Values[i] = 40
		}
	}
	d.VMs[3].CPU.Values = []float64{38, 38, 38}
	d.VMs[3].VCPUs = 64 // similar absolute load on its server
	res := RebalanceCPU(d, 10, 10)
	if res.GapAfter > res.GapBefore {
		t.Fatal("rebalance made things worse")
	}
}

func TestRebalanceZeroLinkDefaults(t *testing.T) {
	res := RebalanceCPU(unbalancedDataset(), 5, 0)
	if res.EstSeconds <= 0 && len(res.Migrations) > 0 {
		t.Fatal("zero link rate should default, not zero out cost")
	}
}
