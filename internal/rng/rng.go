// Package rng provides deterministic pseudo-random number generation and the
// statistical distributions used throughout edgescope's simulators.
//
// Every simulation component in edgescope draws randomness through an
// *rng.Source seeded explicitly by the caller, so that every experiment,
// table, and figure regenerates byte-identically for a given seed. Sources
// can be forked into independent sub-streams (see Fork) so that adding draws
// in one component does not perturb another.
package rng

import (
	"fmt"
	"math"
	"math/rand/v2"

	"edgescope/internal/mathx"
)

// Source is a deterministic random source with distribution helpers.
// It is not safe for concurrent use; fork one Source per goroutine.
//
// Internally the Source keeps both a *rand.Rand (for the algorithms this
// package does not re-implement: IntN, ExpFloat64, Perm, Shuffle, Zipf) and
// the concrete *rand.PCG generator behind it. The hot distribution helpers
// (Float64, Normal and everything built on them) draw straight from the
// PCG, skipping the rand.Rand Source-interface dispatch, with bit-identical
// results — both handles advance the one shared generator state, so scalar
// calls, bulk fills and rand.Rand-backed methods interleave freely on a
// single stream. TestFastPathsMatchRand pins the equivalence.
type Source struct {
	r   *rand.Rand
	pcg *rand.PCG
}

// New returns a Source seeded with the given seed. Two Sources built from the
// same seed produce identical streams.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// Fork derives an independent sub-stream identified by name. The derived
// stream depends only on the parent seed stream position at the time of the
// call and the name, hashed with FNV-1a, so renaming or reordering unrelated
// forks does not change this stream.
func (s *Source) Fork(name string) *Source {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	pcg := rand.NewPCG(s.pcg.Uint64()^h, h)
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// f64 is the concrete-generator uniform draw: the exact rand.Rand.Float64
// transform over the next PCG output, minus the Source-interface dispatch.
func (s *Source) f64() float64 { return float64(s.pcg.Uint64()<<11>>11) / (1 << 53) }

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.f64() }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.pcg.Uint64() }

// Float64s fills dst with uniform [0,1) values, draw-for-draw identical to
// len(dst) sequential Float64 calls, amortising the per-call overhead of
// the scalar path over the whole buffer. It only fits draw sequences that
// are a pure run of uniforms — the virtual-ping kernel cannot use it, for
// example, because each probe's loss draw interleaves with its (normal)
// RTT draws, and reordering draws would change every downstream bit.
func (s *Source) Float64s(dst []float64) {
	pcg := s.pcg
	for i := range dst {
		dst[i] = float64(pcg.Uint64()<<11>>11) / (1 << 53)
	}
}

// Uint64s fills dst with uniform 64-bit values, draw-for-draw identical to
// len(dst) sequential Uint64 calls.
func (s *Source) Uint64s(dst []uint64) {
	pcg := s.pcg
	for i := range dst {
		dst[i] = pcg.Uint64()
	}
}

// IntN returns a uniform value in [0,n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.f64()
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.f64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.norm()
}

// NormalPos returns a normal sample truncated below at zero. It is the
// workhorse for latency-like quantities that must be non-negative.
func (s *Source) NormalPos(mean, stddev float64) float64 {
	v := s.Normal(mean, stddev)
	if v < 0 {
		return 0
	}
	return v
}

// LogNormal returns a log-normally distributed value where mu and sigma are
// the mean and standard deviation of the underlying normal distribution.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Normals fills dst with normal draws, draw-for-draw and bit-for-bit
// identical to len(dst) sequential Normal(mean, stddev) calls on the same
// stream. The ziggurat fast path is inlined per element with the PCG handle
// hoisted out of the loop; the same draw-sequence caveat as Float64s
// applies — the fill only fits a pure run of normals.
func (s *Source) Normals(dst []float64, mean, stddev float64) {
	pcg := s.pcg
	for idx := range dst {
		var v float64
		for {
			u := pcg.Uint64()
			j := int32(u) // Possibly negative
			i := u >> 32 & 0x7F
			x := float64(j) * float64(wn[i])
			if absInt32(j) < kn[i] {
				v = x
				break
			}
			if y, ok := s.normSlow(j, i, x); ok {
				v = y
				break
			}
		}
		dst[idx] = mean + stddev*v
	}
}

// LogNormals fills dst with log-normal draws, draw-for-draw identical to
// len(dst) sequential LogNormal(mu, sigma) calls: one bulk normal fill,
// then one batched exponential over the buffer. On mathx's default path
// the exponential is bit-identical to math.Exp, so the fill is bit-exact
// against the scalar stream.
func (s *Source) LogNormals(dst []float64, mu, sigma float64) {
	s.Normals(dst, mu, sigma)
	mathx.ExpBulk(dst, dst)
}

// LogNormalMeanMedian returns a log-normal sample parameterised by its median
// and the sigma of the underlying normal. This parameterisation is convenient
// when calibrating to reported medians (as the paper reports medians).
func (s *Source) LogNormalMeanMedian(median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return median * math.Exp(s.Normal(0, sigma))
}

// Exponential returns an exponentially distributed value with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Pareto returns a Pareto(xm, alpha) sample: heavy-tailed, minimum xm.
// It panics if xm <= 0 or alpha <= 0.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("rng: invalid Pareto parameters xm=%v alpha=%v", xm, alpha))
	}
	u := 1 - s.f64() // (0,1]
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) sample truncated above at hi.
func (s *Source) BoundedPareto(xm, alpha, hi float64) float64 {
	v := s.Pareto(xm, alpha)
	if v > hi {
		return hi
	}
	return v
}

// Triangular returns a triangularly distributed value on [lo,hi] with mode.
func (s *Source) Triangular(lo, mode, hi float64) float64 {
	if !(lo <= mode && mode <= hi) {
		panic(fmt.Sprintf("rng: invalid Triangular parameters lo=%v mode=%v hi=%v", lo, mode, hi))
	}
	if lo == hi {
		return lo
	}
	u := s.f64()
	fc := (mode - lo) / (hi - lo)
	if u < fc {
		return lo + math.Sqrt(u*(hi-lo)*(mode-lo))
	}
	return hi - math.Sqrt((1-u)*(hi-lo)*(hi-mode))
}

// Zipf draws integers in [0,n) following a Zipf distribution with exponent
// sExp >= 1. Lower indices are more probable, which edgescope uses for
// app-popularity and site-demand skew.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over [0,n) with exponent sExp (>1 strictly
// for rand.Zipf; pass 1.0001 for near-harmonic skew).
func NewZipf(s *Source, sExp float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf n must be positive")
	}
	return &Zipf{z: rand.NewZipf(s.r, sExp, 1, uint64(n-1))}
}

// Next returns the next Zipf-distributed index.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Perm returns a pseudo-random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Choice returns a uniformly chosen index weighted by weights; weights must
// be non-negative and not all zero.
func (s *Source) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: all weights zero")
	}
	target := s.f64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
