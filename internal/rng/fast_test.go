package rng

import (
	"math"
	"math/rand/v2"
	"testing"
)

// refRand builds a plain math/rand/v2 Rand on the exact generator New(seed)
// uses, bypassing this package entirely — the reference the fast paths must
// match bit for bit.
func refRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// TestFastPathsMatchRand pins the concrete-PCG fast paths (f64, the ziggurat
// norm, and everything built on them) against the stdlib implementations on
// the same stream: any divergence would silently change every experiment
// output in the repo.
func TestFastPathsMatchRand(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		s := New(seed)
		ref := refRand(seed)
		for i := 0; i < 20000; i++ {
			switch i % 4 {
			case 0:
				if got, want := s.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 1:
				if got, want := s.Normal(0, 1), ref.NormFloat64(); got != want {
					t.Fatalf("seed %d draw %d: Normal(0,1) = %v, want %v", seed, i, got, want)
				}
			case 2:
				if got, want := s.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %v, want %v", seed, i, got, want)
				}
			case 3:
				// Tail-heavy sigma hits the ziggurat's slow paths too.
				if got, want := s.Normal(3, 10), 3+10*ref.NormFloat64(); got != want {
					t.Fatalf("seed %d draw %d: Normal(3,10) = %v, want %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestFastAndRandShareOneStream pins that rand.Rand-backed methods (IntN,
// ExpFloat64, Shuffle) and the fast paths advance one shared generator: an
// interleaved tape equals the same tape drawn from the stdlib reference.
func TestFastAndRandShareOneStream(t *testing.T) {
	for seed := uint64(1); seed < 9; seed++ {
		s := New(seed)
		ref := refRand(seed)
		for i := 0; i < 5000; i++ {
			switch i % 5 {
			case 0:
				if got, want := s.IntN(97), ref.IntN(97); got != want {
					t.Fatalf("seed %d draw %d: IntN = %d, want %d", seed, i, got, want)
				}
			case 1:
				if got, want := s.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 2:
				if got, want := s.Exponential(2), ref.ExpFloat64()*2; got != want {
					t.Fatalf("seed %d draw %d: Exponential = %v, want %v", seed, i, got, want)
				}
			case 3:
				if got, want := s.Normal(1, 2), 1+2*ref.NormFloat64(); got != want {
					t.Fatalf("seed %d draw %d: Normal = %v, want %v", seed, i, got, want)
				}
			case 4:
				if got, want := s.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %v, want %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestBulkFillsMatchScalarDraws pins the bulk-fill helpers: filling a buffer
// equals the same number of scalar calls, and a fill leaves the stream
// positioned exactly where the scalar sequence would.
func TestBulkFillsMatchScalarDraws(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		for _, n := range []int{0, 1, 7, 1024} {
			a, b := New(seed), New(seed)
			fs := make([]float64, n)
			a.Float64s(fs)
			for i := range fs {
				if want := b.Float64(); fs[i] != want {
					t.Fatalf("seed %d n %d: Float64s[%d] = %v, want %v", seed, n, i, fs[i], want)
				}
			}
			// Stream position after the fill matches the scalar walk.
			if got, want := a.Normal(0, 1), b.Normal(0, 1); got != want {
				t.Fatalf("seed %d n %d: post-fill stream diverged: %v vs %v", seed, n, got, want)
			}

			a, b = New(seed), New(seed)
			us := make([]uint64, n)
			a.Uint64s(us)
			for i := range us {
				if want := b.Uint64(); us[i] != want {
					t.Fatalf("seed %d n %d: Uint64s[%d] = %v, want %v", seed, n, i, us[i], want)
				}
			}
			if got, want := a.Uint64(), b.Uint64(); got != want {
				t.Fatalf("seed %d n %d: post-fill stream diverged: %v vs %v", seed, n, got, want)
			}

			// Normals: the fill must replay the exact scalar ziggurat
			// stream, including slow-path (base strip / wedge) draws,
			// which a 1024-element fill hits with near certainty.
			a, b = New(seed), New(seed)
			ns := make([]float64, n)
			a.Normals(ns, 1.5, 2.25)
			for i := range ns {
				if want := b.Normal(1.5, 2.25); math.Float64bits(ns[i]) != math.Float64bits(want) {
					t.Fatalf("seed %d n %d: Normals[%d] = %v, want %v", seed, n, i, ns[i], want)
				}
			}
			if got, want := a.Normal(0, 1), b.Normal(0, 1); got != want {
				t.Fatalf("seed %d n %d: post-Normals stream diverged: %v vs %v", seed, n, got, want)
			}

			// LogNormals: bulk normals + one ExpBulk must equal the
			// scalar exp-of-normal stream bit-for-bit on the default path.
			a, b = New(seed), New(seed)
			ls := make([]float64, n)
			a.LogNormals(ls, -0.25, 0.8)
			for i := range ls {
				if want := b.LogNormal(-0.25, 0.8); math.Float64bits(ls[i]) != math.Float64bits(want) {
					t.Fatalf("seed %d n %d: LogNormals[%d] = %v, want %v", seed, n, i, ls[i], want)
				}
			}
			if got, want := a.Normal(0, 1), b.Normal(0, 1); got != want {
				t.Fatalf("seed %d n %d: post-LogNormals stream diverged: %v vs %v", seed, n, got, want)
			}
		}
	}
}

// BenchmarkUniformDraws shows what the bulk fill amortises: scalar Float64
// calls vs one Float64s fill of the same length.
func BenchmarkUniformDraws(b *testing.B) {
	const n = 4096
	b.Run("scalar", func(b *testing.B) {
		s := New(7)
		var sink float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				sink = s.Float64()
			}
		}
		_ = sink
	})
	b.Run("bulk", func(b *testing.B) {
		s := New(7)
		buf := make([]float64, n)
		for i := 0; i < b.N; i++ {
			s.Float64s(buf)
		}
	})
}
