package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	// Forking stream "a" then drawing must match forking "a" from an
	// identically positioned parent.
	p1, p2 := New(7), New(7)
	f1 := p1.Fork("a")
	f2 := p2.Fork("a")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("fork streams diverged at draw %d", i)
		}
	}
	// Different names give different streams.
	p3 := New(7)
	g := p3.Fork("b")
	h := New(7).Fork("a")
	diff := false
	for i := 0; i < 16; i++ {
		if g.Uint64() != h.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("forks with different names produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) = %v out of range", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(4)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			n++
		}
	}
	p := float64(n) / trials
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) empirical p = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(5)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~2", std)
	}
}

func TestNormalPosNonNegative(t *testing.T) {
	s := New(6)
	for i := 0; i < 10000; i++ {
		if v := s.NormalPos(0.5, 3); v < 0 {
			t.Fatalf("NormalPos returned %v", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(7)
	const n = 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormalMeanMedian(20, 0.5)
	}
	// Median of samples should be close to 20.
	med := quickSelectMedian(vals)
	if math.Abs(med-20) > 1 {
		t.Fatalf("LogNormalMeanMedian median = %v, want ~20", med)
	}
}

func quickSelectMedian(v []float64) float64 {
	// simple sort-based median for test purposes
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v[len(v)/2]
}

func TestParetoMinimum(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto(3,1.5) = %v below xm", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.BoundedPareto(1, 1.1, 50)
		if v < 1 || v > 50 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestParetoPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestTriangularRange(t *testing.T) {
	s := New(10)
	for i := 0; i < 10000; i++ {
		v := s.Triangular(2, 3, 7)
		if v < 2 || v > 7 {
			t.Fatalf("Triangular(2,3,7) = %v out of range", v)
		}
	}
	if got := s.Triangular(4, 4, 4); got != 4 {
		t.Fatalf("degenerate Triangular = %v, want 4", got)
	}
}

func TestTriangularMode(t *testing.T) {
	s := New(11)
	const n = 60000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Triangular(0, 6, 12)
	}
	// mean of triangular = (lo+mode+hi)/3 = 6
	if mean := sum / n; math.Abs(mean-6) > 0.1 {
		t.Fatalf("Triangular mean = %v, want ~6", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(12)
	z := NewZipf(s, 1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestChoiceWeighted(t *testing.T) {
	s := New(13)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight item chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%v) did not panic", w)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWithinBoundsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.Abs(lo) > 1e150 || math.Abs(hi) > 1e150 {
			return true // avoid overflow in hi-lo; not a property we claim
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		v := New(seed).Uniform(lo, hi)
		return v >= lo && v < hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}
