package vm

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func exportAll(t *testing.T, d *Dataset) (sites, vms, cpu, bw bytes.Buffer) {
	t.Helper()
	if err := ExportCSV(d, &sites, &vms, &cpu, &bw); err != nil {
		t.Fatal(err)
	}
	return
}

func TestCSVRoundTrip(t *testing.T) {
	d := tinyDataset()
	sites, vms, cpu, bw := exportAll(t, d)

	got, err := ImportCSV("NEP", &sites, &vms, &cpu, &bw, CSVOptions{
		Start:       d.Start,
		CPUInterval: 5 * time.Minute,
		BWInterval:  5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(d.VMs) || len(got.Sites) != len(d.Sites) {
		t.Fatal("round trip lost structure")
	}
	for i, v := range d.VMs {
		g := got.VMs[i]
		if g.ID != v.ID || g.App != v.App || g.Site != v.Site || g.Server != v.Server ||
			g.VCPUs != v.VCPUs || g.MemGB != v.MemGB || g.DiskGB != v.DiskGB {
			t.Fatalf("vm %d metadata mismatch: %+v vs %+v", i, g, v)
		}
		for k := range v.CPU.Values {
			if g.CPU.Values[k] != v.CPU.Values[k] {
				t.Fatalf("vm %d cpu[%d] mismatch", i, k)
			}
		}
		for k := range v.PublicBW.Values {
			if g.PublicBW.Values[k] != v.PublicBW.Values[k] {
				t.Fatalf("vm %d bw[%d] mismatch", i, k)
			}
		}
	}
	if got.Duration != 15*time.Minute {
		t.Fatalf("duration = %v, want 15m (3 samples at 5m)", got.Duration)
	}
}

func TestCSVHeaders(t *testing.T) {
	sites, vms, cpu, bw := exportAll(t, tinyDataset())
	for name, buf := range map[string]*bytes.Buffer{
		"sites": &sites, "vms": &vms, "cpu": &cpu, "bw": &bw,
	} {
		first := strings.SplitN(buf.String(), "\n", 2)[0]
		if !strings.Contains(first, "_") || strings.ContainsAny(first, "0123456789.") {
			t.Fatalf("%s csv header looks wrong: %q", name, first)
		}
	}
}

func TestImportCSVRejectsUnknownVM(t *testing.T) {
	sites, vms, _, bw := exportAll(t, tinyDataset())
	badCPU := strings.NewReader("vm_id,slot,cpu_pct\n99,0,10\n")
	if _, err := ImportCSV("NEP", &sites, &vms, badCPU, &bw, CSVOptions{}); err == nil {
		t.Fatal("unknown vm_id accepted")
	}
}

func TestImportCSVRejectsOutOfOrderSlots(t *testing.T) {
	sites, vms, _, bw := exportAll(t, tinyDataset())
	badCPU := strings.NewReader("vm_id,slot,cpu_pct\n0,1,10\n")
	if _, err := ImportCSV("NEP", &sites, &vms, badCPU, &bw, CSVOptions{}); err == nil {
		t.Fatal("out-of-order slot accepted")
	}
}

func TestImportCSVRejectsDuplicateVM(t *testing.T) {
	sites, _, cpu, bw := exportAll(t, tinyDataset())
	dupVMs := strings.NewReader(
		"vm_id,app_id,customer_id,site,server,vcpus,mem_gb,disk_gb\n" +
			"0,0,0,0,0,8,16,100\n0,0,0,0,0,8,16,100\n")
	if _, err := ImportCSV("NEP", &sites, dupVMs, &cpu, &bw, CSVOptions{}); err == nil {
		t.Fatal("duplicate vm_id accepted")
	}
}

func TestImportCSVRejectsBadSiteRow(t *testing.T) {
	badSites := strings.NewReader(
		"site_id,name,province,servers,cores_per_server,mem_gb_per_server\n" +
			"0,x,y,0,64,256\n")
	_, vms, cpu, bw := exportAll(t, tinyDataset())
	if _, err := ImportCSV("NEP", badSites, &vms, &cpu, &bw, CSVOptions{}); err == nil {
		t.Fatal("zero-server site accepted")
	}
}

func TestImportCSVValidates(t *testing.T) {
	// A VM referencing a missing site index must fail Validate at import.
	sites := strings.NewReader(
		"site_id,name,province,servers,cores_per_server,mem_gb_per_server\n" +
			"0,a,P,1,64,256\n")
	vms := strings.NewReader(
		"vm_id,app_id,customer_id,site,server,vcpus,mem_gb,disk_gb\n" +
			"0,0,0,7,0,8,16,100\n")
	cpu := strings.NewReader("vm_id,slot,cpu_pct\n0,0,10\n")
	bw := strings.NewReader("vm_id,slot,public_mbps\n0,0,10\n")
	if _, err := ImportCSV("NEP", sites, vms, cpu, bw, CSVOptions{}); err == nil {
		t.Fatal("invalid placement accepted")
	}
}
