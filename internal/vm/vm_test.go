package vm

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgescope/internal/timeseries"
)

var t0 = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

func series(vals ...float64) *timeseries.Series {
	return timeseries.New(t0, 5*time.Minute, vals)
}

// tinyDataset builds a 2-site, 3-VM dataset used across tests.
func tinyDataset() *Dataset {
	return &Dataset{
		Platform: "NEP",
		Start:    t0,
		Duration: time.Hour,
		Sites: []*Site{
			{Name: "Guangdong-01", Province: "Guangdong", Servers: []Server{
				{CPUCores: 64, MemGB: 256}, {CPUCores: 64, MemGB: 256},
			}},
			{Name: "Beijing-01", Province: "Beijing", Servers: []Server{
				{CPUCores: 64, MemGB: 256},
			}},
		},
		VMs: []*VM{
			{ID: 0, App: 0, Customer: 0, Site: 0, Server: 0, VCPUs: 8, MemGB: 16, DiskGB: 100,
				CPU: series(10, 20, 30), PublicBW: series(100, 200, 300)},
			{ID: 1, App: 0, Customer: 0, Site: 0, Server: 1, VCPUs: 16, MemGB: 64, DiskGB: 200,
				CPU: series(40, 50, 60), PublicBW: series(50, 50, 50)},
			{ID: 2, App: 1, Customer: 1, Site: 1, Server: 0, VCPUs: 4, MemGB: 16, DiskGB: 50,
				CPU: series(5, 5, 5), PublicBW: series(10, 10, 10)},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadPlacement(t *testing.T) {
	d := tinyDataset()
	d.VMs[0].Site = 9
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "site") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateCatchesBadServer(t *testing.T) {
	d := tinyDataset()
	d.VMs[2].Server = 5
	if err := d.Validate(); err == nil {
		t.Fatal("expected server error")
	}
}

func TestValidateCatchesMissingSeries(t *testing.T) {
	d := tinyDataset()
	d.VMs[1].CPU = nil
	if err := d.Validate(); err == nil {
		t.Fatal("expected CPU series error")
	}
}

func TestValidateCatchesCPURange(t *testing.T) {
	d := tinyDataset()
	d.VMs[0].CPU = series(10, 120, 30)
	if err := d.Validate(); err == nil {
		t.Fatal("expected CPU range error")
	}
}

func TestValidateCatchesEmptySite(t *testing.T) {
	d := tinyDataset()
	d.Sites = append(d.Sites, &Site{Name: "empty"})
	if err := d.Validate(); err == nil {
		t.Fatal("expected empty site error")
	}
}

func TestVMStats(t *testing.T) {
	v := tinyDataset().VMs[0]
	if v.MeanCPU() != 20 {
		t.Fatalf("MeanCPU = %v", v.MeanCPU())
	}
	if v.P95MaxCPU() < 28 || v.P95MaxCPU() > 30 {
		t.Fatalf("P95MaxCPU = %v", v.P95MaxCPU())
	}
	if v.CPUCV() <= 0 {
		t.Fatal("CPUCV should be positive")
	}
	if v.MeanBWMbps() != 200 {
		t.Fatalf("MeanBWMbps = %v", v.MeanBWMbps())
	}
	if (&VM{}).MeanBWMbps() != 0 {
		t.Fatal("nil bandwidth should mean 0")
	}
}

func TestGroupings(t *testing.T) {
	d := tinyDataset()
	apps := d.AppVMs()
	if len(apps) != 2 || len(apps[0]) != 2 || len(apps[1]) != 1 {
		t.Fatalf("AppVMs = %v", apps)
	}
	sites := d.SiteVMs()
	if len(sites[0]) != 2 || len(sites[1]) != 1 {
		t.Fatalf("SiteVMs = %v", sites)
	}
	servers := d.ServerVMs()
	if len(servers[[2]int{0, 0}]) != 1 || len(servers[[2]int{0, 1}]) != 1 {
		t.Fatalf("ServerVMs = %v", servers)
	}
}

func TestSiteSalesRates(t *testing.T) {
	d := tinyDataset()
	rates := d.SiteSalesRates()
	// Site 0: (8+16)/128 vCPU, (16+64)/512 mem.
	if rates[0].CPU != 24.0/128 {
		t.Fatalf("site 0 CPU sales = %v", rates[0].CPU)
	}
	if rates[0].Mem != 80.0/512 {
		t.Fatalf("site 0 mem sales = %v", rates[0].Mem)
	}
	// Paper: CPU sells ~2× better than memory relative to capacity.
	if rates[0].CPU <= rates[0].Mem {
		t.Fatal("CPU sales rate should exceed memory in this dataset")
	}
}

func TestServerCPUUsageWeighted(t *testing.T) {
	d := tinyDataset()
	s := d.ServerCPUUsage(0, 0)
	if s == nil || s.Len() != 3 {
		t.Fatal("missing usage series")
	}
	if s.Values[0] != 10 { // single VM, weight cancels
		t.Fatalf("usage[0] = %v", s.Values[0])
	}
	if d.ServerCPUUsage(1, 0) == nil {
		t.Fatal("occupied server reported empty")
	}
	if d.ServerCPUUsage(0, 9) != nil {
		t.Fatal("empty server should be nil")
	}
}

func TestServerCPUUsageMultiVM(t *testing.T) {
	d := tinyDataset()
	d.VMs[1].Server = 0 // co-locate with VM 0
	s := d.ServerCPUUsage(0, 0)
	// weighted: (8*10 + 16*40)/24 = 30
	if s.Values[0] != 30 {
		t.Fatalf("weighted usage = %v, want 30", s.Values[0])
	}
}

func TestSiteBandwidth(t *testing.T) {
	d := tinyDataset()
	bw := d.SiteBandwidth(0)
	if bw.Values[0] != 150 || bw.Values[2] != 350 {
		t.Fatalf("site bandwidth = %v", bw.Values)
	}
	if d.SiteBandwidth(9) != nil {
		t.Fatal("unknown site should be nil")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := tinyDataset()
	path := filepath.Join(t.TempDir(), "trace.gob.gz")
	if err := Save(d, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != d.Platform || len(got.VMs) != len(d.VMs) || len(got.Sites) != len(d.Sites) {
		t.Fatal("round trip lost structure")
	}
	if got.VMs[1].CPU.Values[2] != 60 {
		t.Fatal("round trip lost series data")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob.gz")); err == nil {
		t.Fatal("expected error")
	}
}

func TestWriteVMTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVMTableCSV(tinyDataset(), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 VMs
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "vm_id,app_id") {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.Contains(lines[1], "8,16,100") {
		t.Fatalf("row = %s", lines[1])
	}
}
