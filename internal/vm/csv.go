package vm

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"edgescope/internal/timeseries"
)

// The CSV trace format mirrors the released EdgeWorkloadsTraces layout: a
// site inventory, a VM table, and long-form usage tables. It allows running
// edgescope's entire §4 analysis on externally supplied traces.
//
//	sites.csv:  site_id,name,province,servers,cores_per_server,mem_gb_per_server
//	vms.csv:    vm_id,app_id,customer_id,site,server,vcpus,mem_gb,disk_gb
//	cpu.csv:    vm_id,slot,cpu_pct          (slot = sample index)
//	bw.csv:     vm_id,slot,public_mbps
//
// Timestamps are reconstructed from the dataset Start and the configured
// sampling intervals.

// CSVOptions parameterises ExportCSV/ImportCSV.
type CSVOptions struct {
	Start       time.Time
	CPUInterval time.Duration
	BWInterval  time.Duration
}

func (o *CSVOptions) fill() {
	if o.Start.IsZero() {
		o.Start = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	if o.CPUInterval == 0 {
		o.CPUInterval = 5 * time.Minute
	}
	if o.BWInterval == 0 {
		o.BWInterval = 15 * time.Minute
	}
}

// ExportCSV writes the dataset's four CSV tables.
func ExportCSV(d *Dataset, sites, vms, cpu, bw io.Writer) error {
	sw := csv.NewWriter(sites)
	if err := sw.Write([]string{"site_id", "name", "province", "servers", "cores_per_server", "mem_gb_per_server"}); err != nil {
		return err
	}
	for i, s := range d.Sites {
		cores, mem := 0, 0
		if len(s.Servers) > 0 {
			cores, mem = s.Servers[0].CPUCores, s.Servers[0].MemGB
		}
		if err := sw.Write([]string{
			strconv.Itoa(i), s.Name, s.Province,
			strconv.Itoa(len(s.Servers)), strconv.Itoa(cores), strconv.Itoa(mem),
		}); err != nil {
			return err
		}
	}
	sw.Flush()
	if err := sw.Error(); err != nil {
		return err
	}

	vw := csv.NewWriter(vms)
	if err := vw.Write([]string{"vm_id", "app_id", "customer_id", "site", "server", "vcpus", "mem_gb", "disk_gb"}); err != nil {
		return err
	}
	for _, v := range d.VMs {
		if err := vw.Write([]string{
			strconv.Itoa(v.ID), strconv.Itoa(v.App), strconv.Itoa(v.Customer),
			strconv.Itoa(v.Site), strconv.Itoa(v.Server),
			strconv.Itoa(v.VCPUs), strconv.Itoa(v.MemGB), strconv.Itoa(v.DiskGB),
		}); err != nil {
			return err
		}
	}
	vw.Flush()
	if err := vw.Error(); err != nil {
		return err
	}

	if err := writeUsage(cpu, "cpu_pct", d.VMs, func(v *VM) *timeseries.Series { return v.CPU }); err != nil {
		return err
	}
	return writeUsage(bw, "public_mbps", d.VMs, func(v *VM) *timeseries.Series { return v.PublicBW })
}

func writeUsage(w io.Writer, col string, vms []*VM, sel func(*VM) *timeseries.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vm_id", "slot", col}); err != nil {
		return err
	}
	for _, v := range vms {
		s := sel(v)
		if s == nil {
			continue
		}
		id := strconv.Itoa(v.ID)
		for slot, val := range s.Values {
			if err := cw.Write([]string{id, strconv.Itoa(slot), strconv.FormatFloat(val, 'g', 8, 64)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reconstructs a dataset from the four CSV tables.
func ImportCSV(platform string, sites, vms, cpu, bw io.Reader, opts CSVOptions) (*Dataset, error) {
	opts.fill()
	d := &Dataset{Platform: platform, Start: opts.Start}

	srecs, err := readAll(sites, 6)
	if err != nil {
		return nil, fmt.Errorf("vm: sites csv: %w", err)
	}
	for _, rec := range srecs {
		n, err1 := strconv.Atoi(rec[3])
		cores, err2 := strconv.Atoi(rec[4])
		mem, err3 := strconv.Atoi(rec[5])
		if err1 != nil || err2 != nil || err3 != nil || n <= 0 {
			return nil, fmt.Errorf("vm: bad site row %v", rec)
		}
		servers := make([]Server, n)
		for i := range servers {
			servers[i] = Server{CPUCores: cores, MemGB: mem}
		}
		d.Sites = append(d.Sites, &Site{Name: rec[1], Province: rec[2], Servers: servers})
	}

	vrecs, err := readAll(vms, 8)
	if err != nil {
		return nil, fmt.Errorf("vm: vms csv: %w", err)
	}
	byID := map[int]*VM{}
	for _, rec := range vrecs {
		vals := make([]int, 8)
		for i := range vals {
			v, err := strconv.Atoi(rec[i])
			if err != nil {
				return nil, fmt.Errorf("vm: bad vm row %v: %w", rec, err)
			}
			vals[i] = v
		}
		v := &VM{
			ID: vals[0], App: vals[1], Customer: vals[2],
			Site: vals[3], Server: vals[4],
			VCPUs: vals[5], MemGB: vals[6], DiskGB: vals[7],
		}
		if _, dup := byID[v.ID]; dup {
			return nil, fmt.Errorf("vm: duplicate vm_id %d", v.ID)
		}
		byID[v.ID] = v
		d.VMs = append(d.VMs, v)
	}

	cpuVals, err := readUsage(cpu)
	if err != nil {
		return nil, fmt.Errorf("vm: cpu csv: %w", err)
	}
	bwVals, err := readUsage(bw)
	if err != nil {
		return nil, fmt.Errorf("vm: bw csv: %w", err)
	}
	for id, vals := range cpuVals {
		v, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("vm: cpu usage for unknown vm %d", id)
		}
		v.CPU = timeseries.New(opts.Start, opts.CPUInterval, vals)
	}
	for id, vals := range bwVals {
		v, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("vm: bandwidth for unknown vm %d", id)
		}
		v.PublicBW = timeseries.New(opts.Start, opts.BWInterval, vals)
	}

	var maxDur time.Duration
	for _, v := range d.VMs {
		if v.CPU != nil {
			if dur := time.Duration(v.CPU.Len()) * opts.CPUInterval; dur > maxDur {
				maxDur = dur
			}
		}
	}
	d.Duration = maxDur
	return d, d.Validate()
}

// readAll parses a CSV with a header and a fixed column count.
func readAll(r io.Reader, cols int) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = cols
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("empty csv")
	}
	return recs[1:], nil // skip header
}

// readUsage parses a long-form usage table into per-VM sample slices,
// requiring slots to arrive in order per VM.
func readUsage(r io.Reader) (map[int][]float64, error) {
	recs, err := readAll(r, 3)
	if err != nil {
		return nil, err
	}
	out := map[int][]float64{}
	for _, rec := range recs {
		id, err1 := strconv.Atoi(rec[0])
		slot, err2 := strconv.Atoi(rec[1])
		val, err3 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad usage row %v", rec)
		}
		if slot != len(out[id]) {
			return nil, fmt.Errorf("vm %d: slot %d out of order (expected %d)", id, slot, len(out[id]))
		}
		out[id] = append(out[id], val)
	}
	return out, nil
}
