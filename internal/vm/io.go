package vm

import (
	"compress/gzip"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Save writes the dataset as gzip-compressed gob, the format cmd/tracegen
// produces and the analysis tools consume.
func Save(d *Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vm: create %s: %w", path, err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(d); err != nil {
		return fmt.Errorf("vm: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vm: open %s: %w", path, err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("vm: gzip %s: %w", path, err)
	}
	defer zr.Close()
	var d Dataset
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("vm: decode %s: %w", path, err)
	}
	return &d, nil
}

// WriteVMTableCSV exports the VM table (placement, ownership, sizes and
// usage summaries) in the spirit of the released EdgeWorkloadsTraces CSVs.
func WriteVMTableCSV(d *Dataset, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"vm_id", "app_id", "customer_id", "site", "server",
		"vcpus", "mem_gb", "disk_gb", "mean_cpu_pct", "p95max_cpu_pct", "mean_bw_mbps"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, v := range d.VMs {
		rec := []string{
			strconv.Itoa(v.ID), strconv.Itoa(v.App), strconv.Itoa(v.Customer),
			strconv.Itoa(v.Site), strconv.Itoa(v.Server),
			strconv.Itoa(v.VCPUs), strconv.Itoa(v.MemGB), strconv.Itoa(v.DiskGB),
			fmt.Sprintf("%.3f", v.MeanCPU()),
			fmt.Sprintf("%.3f", v.P95MaxCPU()),
			fmt.Sprintf("%.3f", v.MeanBWMbps()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
