// Package vm defines the workload-trace schema of the paper's §2.1.2
// dataset: every IaaS VM on the platform with its placement (site, server),
// ownership (customer, app), resource sizes, a CPU-usage series and a
// bandwidth-usage series. The same schema holds both the NEP edge trace and
// the Azure-like cloud trace, so every §4 analysis runs unchanged on either;
// it also matches the EdgeWorkloadsTraces dataset the authors released, so
// the analysis code would apply to the real trace directly.
package vm

import (
	"fmt"
	"time"

	"edgescope/internal/stats"
	"edgescope/internal/timeseries"
)

// VM is one IaaS virtual machine and its usage traces.
type VM struct {
	ID       int
	App      int // VMs with the same image and customer form one edge app
	Customer int
	Site     int // index into Dataset.Sites
	Server   int // index into the site's servers

	VCPUs  int
	MemGB  int
	DiskGB int

	// CPU is the CPU utilisation series in percent (paper: 1-minute
	// reports; the synthetic default is 5-minute to bound memory).
	CPU *timeseries.Series
	// PublicBW is the public (Internet) bandwidth usage in Mbps (paper:
	// 5-minute reports).
	PublicBW *timeseries.Series
	// PrivateBW is intra-site traffic in Mbps; may be nil for apps without
	// east-west traffic.
	PrivateBW *timeseries.Series
}

// MeanCPU returns the VM's average CPU utilisation.
func (v *VM) MeanCPU() float64 { return v.CPU.Mean() }

// P95MaxCPU returns the 95th percentile of the VM's CPU samples, the
// paper's "P95 Max" robust-maximum metric.
func (v *VM) P95MaxCPU() float64 { return stats.Percentile(v.CPU.Values, 95) }

// P95MaxCPUScratch is P95MaxCPU computed through a caller-owned
// stats.Scratch, so a walk over many VMs (Figure 10 touches every VM of both
// traces) reuses one buffer instead of copying each CPU series.
func (v *VM) P95MaxCPUScratch(sc *stats.Scratch) float64 {
	return sc.Percentile(v.CPU.Values, 95)
}

// CPUCV returns the across-time coefficient of variation of CPU usage.
func (v *VM) CPUCV() float64 { return v.CPU.CV() }

// MeanBWMbps returns the VM's average public bandwidth.
func (v *VM) MeanBWMbps() float64 {
	if v.PublicBW == nil {
		return 0
	}
	return v.PublicBW.Mean()
}

// Server is one physical machine of a site.
type Server struct {
	CPUCores int
	MemGB    int
}

// Site is one datacenter with its physical inventory.
type Site struct {
	Name     string
	Province string
	Servers  []Server
}

// Dataset is a complete platform trace over a time window.
type Dataset struct {
	Platform string
	Start    time.Time
	Duration time.Duration
	Sites    []*Site
	VMs      []*VM
}

// Validate checks referential integrity: placements in range, series
// non-nil, capacities positive. It returns the first problem found.
func (d *Dataset) Validate() error {
	for i, s := range d.Sites {
		if len(s.Servers) == 0 {
			return fmt.Errorf("vm: site %d (%s) has no servers", i, s.Name)
		}
		for j, srv := range s.Servers {
			if srv.CPUCores <= 0 || srv.MemGB <= 0 {
				return fmt.Errorf("vm: site %d server %d has non-positive capacity", i, j)
			}
		}
	}
	for _, v := range d.VMs {
		if v.Site < 0 || v.Site >= len(d.Sites) {
			return fmt.Errorf("vm: VM %d references site %d of %d", v.ID, v.Site, len(d.Sites))
		}
		if v.Server < 0 || v.Server >= len(d.Sites[v.Site].Servers) {
			return fmt.Errorf("vm: VM %d references server %d", v.ID, v.Server)
		}
		if v.VCPUs <= 0 || v.MemGB <= 0 {
			return fmt.Errorf("vm: VM %d has non-positive size", v.ID)
		}
		if v.CPU == nil || v.CPU.Len() == 0 {
			return fmt.Errorf("vm: VM %d has no CPU series", v.ID)
		}
		if v.PublicBW == nil || v.PublicBW.Len() == 0 {
			return fmt.Errorf("vm: VM %d has no bandwidth series", v.ID)
		}
		for _, x := range v.CPU.Values {
			if x < 0 || x > 100 {
				return fmt.Errorf("vm: VM %d CPU sample %v out of [0,100]", v.ID, x)
			}
		}
	}
	return nil
}

// AppVMs groups VM indices by app ID.
func (d *Dataset) AppVMs() map[int][]int {
	out := map[int][]int{}
	for i, v := range d.VMs {
		out[v.App] = append(out[v.App], i)
	}
	return out
}

// SiteVMs groups VM indices by site index.
func (d *Dataset) SiteVMs() map[int][]int {
	out := map[int][]int{}
	for i, v := range d.VMs {
		out[v.Site] = append(out[v.Site], i)
	}
	return out
}

// ServerVMs groups VM indices by (site, server).
func (d *Dataset) ServerVMs() map[[2]int][]int {
	out := map[[2]int][]int{}
	for i, v := range d.VMs {
		k := [2]int{v.Site, v.Server}
		out[k] = append(out[k], i)
	}
	return out
}

// SalesRate describes how much of a pool's capacity is subscribed.
type SalesRate struct {
	CPU float64 // subscribed vCPUs / physical cores
	Mem float64 // subscribed GB / physical GB
}

// SiteSalesRates returns the per-site CPU/memory sales rate.
func (d *Dataset) SiteSalesRates() []SalesRate {
	out := make([]SalesRate, len(d.Sites))
	soldCPU := make([]float64, len(d.Sites))
	soldMem := make([]float64, len(d.Sites))
	for _, v := range d.VMs {
		soldCPU[v.Site] += float64(v.VCPUs)
		soldMem[v.Site] += float64(v.MemGB)
	}
	for i, s := range d.Sites {
		var cores, mem float64
		for _, srv := range s.Servers {
			cores += float64(srv.CPUCores)
			mem += float64(srv.MemGB)
		}
		if cores > 0 {
			out[i].CPU = soldCPU[i] / cores
		}
		if mem > 0 {
			out[i].Mem = soldMem[i] / mem
		}
	}
	return out
}

// ServerCPUUsage returns, for one server, the capacity-weighted mean CPU
// utilisation of its hosted VMs at each sample (the paper's Figure 11
// machine-level metric), or nil when the server hosts nothing.
func (d *Dataset) ServerCPUUsage(site, server int) *timeseries.Series {
	var hosted []*VM
	for _, v := range d.VMs {
		if v.Site == site && v.Server == server {
			hosted = append(hosted, v)
		}
	}
	if len(hosted) == 0 {
		return nil
	}
	n := hosted[0].CPU.Len()
	vals := make([]float64, n)
	var weight float64
	for _, v := range hosted {
		w := float64(v.VCPUs)
		weight += w
		m := v.CPU.Len()
		if m > n {
			m = n
		}
		for t := 0; t < m; t++ {
			vals[t] += w * v.CPU.Values[t]
		}
	}
	if weight > 0 {
		for t := range vals {
			vals[t] /= weight
		}
	}
	return timeseries.New(hosted[0].CPU.Start, hosted[0].CPU.Interval, vals)
}

// SiteBandwidth returns a site's total public bandwidth series in Mbps
// (summed across hosted VMs), or nil when the site hosts nothing. One clone
// seeds the accumulator; every further VM folds in with AddInPlace, so the
// whole walk allocates a single series.
func (d *Dataset) SiteBandwidth(site int) *timeseries.Series {
	var acc *timeseries.Series
	for _, v := range d.VMs {
		if v.Site != site || v.PublicBW == nil {
			continue
		}
		if acc == nil {
			acc = v.PublicBW.Clone()
			continue
		}
		acc.AddInPlace(v.PublicBW)
	}
	return acc
}
