package elastic

import (
	"testing"
)

func TestDiurnalWorkloadShape(t *testing.T) {
	w := DiurnalWorkload(100, 4, 21)
	if w.RPS.Len() != 288 {
		t.Fatalf("slots = %d", w.RPS.Len())
	}
	// Peak near 21:00 must exceed trough near 09:00 by roughly the ratio.
	peak := w.RPS.Values[21*12]
	trough := w.RPS.Values[9*12]
	if ratio := peak / trough; ratio < 3 || ratio > 5 {
		t.Fatalf("peak/trough = %.1f, want ~4", ratio)
	}
	if w.TotalInvocations() <= 0 {
		t.Fatal("no invocations")
	}
}

func TestVMPlanOverload(t *testing.T) {
	w := DiurnalWorkload(100, 4, 21)
	under := VMPlan{Replicas: 1, CapacityRPS: 50, VCPUs: 8, MemGB: 32, ExecMs: 25}
	over := VMPlan{Replicas: 4, CapacityRPS: 50, VCPUs: 8, MemGB: 32, ExecMs: 25}
	uo := under.Evaluate(w)
	oo := over.Evaluate(w)
	if uo.OverloadFrac == 0 {
		t.Fatal("underprovisioned fleet should overload at peak")
	}
	if oo.OverloadFrac != 0 {
		t.Fatalf("provisioned fleet overloaded %.2f of the time", oo.OverloadFrac)
	}
	if uo.P99LatencyMs <= oo.P99LatencyMs {
		t.Fatal("overloaded fleet should have worse tail latency")
	}
	// Cost scales with replica count, not demand.
	if oo.MonthlyCost != 4*uo.MonthlyCost {
		t.Fatalf("VM cost should be linear in replicas: %v vs %v", oo.MonthlyCost, uo.MonthlyCost)
	}
}

func TestServerlessColdStartTail(t *testing.T) {
	sl := DefaultServerless()
	// A near-idle app: arrivals usually find no warm instance.
	idle := DiurnalWorkload(0.001, 2, 12)
	busy := DiurnalWorkload(200, 2, 12)
	io := sl.Evaluate(idle)
	bo := sl.Evaluate(busy)
	if io.P99LatencyMs < sl.ColdStartMs/2 {
		t.Fatalf("idle app p99 = %.0f ms, cold starts should dominate", io.P99LatencyMs)
	}
	if bo.P99LatencyMs > sl.ExecMs*2 {
		t.Fatalf("busy app p99 = %.0f ms, instances should stay warm", bo.P99LatencyMs)
	}
}

func TestCostCrossover(t *testing.T) {
	// §5's economics: serverless wins for idle/spiky apps, reserved VMs win
	// for sustained load.
	sl := DefaultServerless()
	vmPlan := VMPlan{Replicas: 2, CapacityRPS: 100, VCPUs: 8, MemGB: 32, ExecMs: 25}

	idle := DiurnalWorkload(0.05, 3, 12)
	if sl.Evaluate(idle).MonthlyCost >= vmPlan.Evaluate(idle).MonthlyCost {
		t.Fatal("serverless should be cheaper for a near-idle app")
	}

	heavy := DiurnalWorkload(150, 2, 12)
	if sl.Evaluate(heavy).MonthlyCost <= vmPlan.Evaluate(heavy).MonthlyCost {
		t.Fatal("reserved VMs should be cheaper under sustained heavy load")
	}
}

func TestServerlessNeverOverloads(t *testing.T) {
	sl := DefaultServerless()
	w := DiurnalWorkload(10000, 10, 21)
	if out := sl.Evaluate(w); out.OverloadFrac != 0 {
		t.Fatal("FaaS scales out; overload should be zero")
	}
}

func TestLatencyInflationCapped(t *testing.T) {
	w := DiurnalWorkload(99.9, 1.0001, 12) // pinned at ~capacity
	p := VMPlan{Replicas: 1, CapacityRPS: 100, VCPUs: 8, MemGB: 32, ExecMs: 25}
	out := p.Evaluate(w)
	if out.P99LatencyMs > 25*25 {
		t.Fatalf("latency inflation uncapped: %.0f ms", out.P99LatencyMs)
	}
}
