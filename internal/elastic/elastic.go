// Package elastic models the §5 "decomposing edge services" discussion:
// should an edge app run on reserved IaaS VMs (today's dominant NEP usage)
// or on a serverless/FaaS substrate? Reserved VMs bill a fixed monthly fee
// and suffer overload when demand spikes past capacity; serverless bills
// per invocation and scales elastically, but cold starts — the criticism
// the paper cites — penalise tail latency exactly where edge apps care
// (ultra-low delay). The package quantifies both sides over a diurnal
// request pattern so the crossover is explicit.
package elastic

import (
	"math"
	"time"

	"edgescope/internal/billing"
	"edgescope/internal/mathx"
	"edgescope/internal/stats"
	"edgescope/internal/timeseries"
)

// Workload is a request-rate series (requests per second over time).
type Workload struct {
	RPS *timeseries.Series
}

// TotalInvocations integrates the request rate over the series.
func (w Workload) TotalInvocations() float64 {
	secs := w.RPS.Interval.Seconds()
	var total float64
	for _, r := range w.RPS.Values {
		total += r * secs
	}
	return total
}

// Outcome summarises one plan's behaviour over the workload, scaled to a
// 30-day month.
type Outcome struct {
	MonthlyCost   billing.Money
	MeanLatencyMs float64
	P99LatencyMs  float64
	// OverloadFrac is the fraction of time slots where demand exceeded
	// service capacity (requests queue or drop).
	OverloadFrac float64
}

// VMPlan is a fleet of reserved VMs fronted by a load balancer.
type VMPlan struct {
	Replicas    int
	CapacityRPS float64 // per replica
	VCPUs       int
	MemGB       int
	// ExecMs is the service time at low load; latency inflates with
	// utilisation following an M/M/1-style 1/(1-rho) factor, capped.
	ExecMs float64
}

// Evaluate runs the plan against the workload.
func (p VMPlan) Evaluate(w Workload) Outcome {
	cap := float64(p.Replicas) * p.CapacityRPS
	hw := billing.NEPHardware()
	cost := billing.Money(p.Replicas) * hw.MonthlyHardware(p.VCPUs, p.MemGB, 40)

	lats := make([]float64, 0, len(w.RPS.Values))
	overload := 0
	for _, r := range w.RPS.Values {
		rho := r / cap
		if rho >= 1 {
			overload++
			rho = 0.999
		}
		inflate := 1 / (1 - rho)
		if inflate > 20 {
			inflate = 20
		}
		lats = append(lats, p.ExecMs*inflate)
	}
	sum := stats.SummarizeInPlace(lats)
	return Outcome{
		MonthlyCost:   cost,
		MeanLatencyMs: sum.Mean(),
		P99LatencyMs:  sum.Percentile(99),
		OverloadFrac:  float64(overload) / float64(len(w.RPS.Values)),
	}
}

// ServerlessPlan is a FaaS deployment.
type ServerlessPlan struct {
	// PricePerMInvocations is the cost per million invocations.
	PricePerMInvocations billing.Money
	// PricePerGBSecond is the memory-time rate.
	PricePerGBSecond billing.Money
	// MemGB and ExecMs describe one invocation.
	MemGB  float64
	ExecMs float64
	// ColdStartMs is the paper-cited penalty when no warm instance exists.
	ColdStartMs float64
	// KeepAliveSec is how long an idle instance stays warm.
	KeepAliveSec float64
}

// DefaultServerless mirrors typical FaaS pricing converted to RMB, with a
// per-invocation compute footprint equivalent to the VM path (one request
// occupies ~80 ms of a core at 2 GB, matching a 100-RPS 8-vCPU replica).
func DefaultServerless() ServerlessPlan {
	return ServerlessPlan{
		PricePerMInvocations: 1.4,
		PricePerGBSecond:     0.000077,
		MemGB:                2,
		ExecMs:               80,
		ColdStartMs:          900,
		KeepAliveSec:         300,
	}
}

// Evaluate runs the plan against the workload. Cold-start probability per
// slot follows from the arrival rate and keep-alive: an arrival is cold
// when no request landed on its instance within the keep-alive window,
// approximated as exp(-rps × keepalive) for the first instance tier.
func (p ServerlessPlan) Evaluate(w Workload) Outcome {
	secs := w.RPS.Interval.Seconds()
	var inv, gbs float64
	lats := make([]float64, 0, len(w.RPS.Values))
	// The per-slot cold-start probabilities are deterministic, so they
	// batch cleanly: collect the exponents, one ExpBulk over the buffer,
	// then finish the latency expression in place (bit-identical to the
	// per-slot math.Exp it replaces).
	for _, r := range w.RPS.Values {
		n := r * secs
		inv += n
		gbs += n * p.MemGB * p.ExecMs / 1000
		lats = append(lats, -r*p.KeepAliveSec)
	}
	mathx.ExpBulk(lats, lats)
	for i, pCold := range lats {
		lats[i] = p.ExecMs + pCold*p.ColdStartMs
	}
	// Scale the observed window to a 30-day month.
	window := float64(w.RPS.Len()) * secs
	scale := 30 * 24 * 3600 / window
	cost := (billing.Money(inv/1e6)*p.PricePerMInvocations + billing.Money(gbs)*p.PricePerGBSecond) * billing.Money(scale)

	// P99: the cold-start tail. With per-slot cold probabilities, the p99
	// latency over the window is the 99th percentile of per-request
	// latencies; approximate with the worst slots weighted by rate.
	sum := stats.SummarizeInPlace(lats)
	return Outcome{
		MonthlyCost:   cost,
		MeanLatencyMs: sum.Mean(),
		P99LatencyMs:  sum.Percentile(99),
		OverloadFrac:  0, // FaaS scales out
	}
}

// DiurnalWorkload builds a day-long request pattern at 5-minute slots: mean
// RPS with a peak-to-trough ratio and a peak hour, mirroring the usage
// shapes of §4.2.
func DiurnalWorkload(meanRPS, peakToTrough, peakHour float64) Workload {
	const n = 24 * 12 // 5-minute slots
	vals := make([]float64, n)
	amp := (peakToTrough - 1) / (peakToTrough + 1)
	for i := range vals {
		h := float64(i) / 12
		vals[i] = meanRPS * (1 + amp*math.Cos((h-peakHour)/24*2*math.Pi))
		if vals[i] < 1e-4 {
			vals[i] = 1e-4
		}
	}
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	return Workload{RPS: timeseries.New(start, 5*time.Minute, vals)}
}
