// Command qoebench runs the application-QoE experiments of §3.3: backend
// RTTs (Table 5), cloud-gaming response delay (Figure 6) and live-streaming
// delay (Figure 7), including the GPU/core-count and jitter-buffer
// ablations.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	s := core.NewSuite(*seed, core.PaperScale)
	for _, a := range []core.NamedArtifact{
		{ID: "table5", Desc: "QoE backend RTTs", Artifact: s.Table5()},
		{ID: "fig6", Desc: "cloud gaming response delay", Artifact: s.Figure6()},
		{ID: "fig7", Desc: "live streaming delay", Artifact: s.Figure7()},
	} {
		fmt.Printf("\n# %s — %s\n", a.ID, a.Desc)
		if err := a.Artifact.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "qoebench:", err)
			os.Exit(1)
		}
	}
}
