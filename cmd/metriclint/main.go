// Command metriclint validates Prometheus text exposition format 0.0.4: each
// sample line must parse, follow a # TYPE declaration for its family, and use
// a known type. It reads a file (or stdin with no argument), or scrapes a
// URL with -url — the shape CI uses to smoke-test a live /metrics endpoint
// without curl. With -require it additionally fails unless the named metric
// families are present.
//
// Usage:
//
//	metriclint [file]
//	metriclint -url http://localhost:8355/metrics -require telemetry_ingest_accepted_total
//
// Exit status: 0 valid, 1 malformed or missing a required family, 2 usage or
// I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"edgescope/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading a file or stdin")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP scrape timeout with -url")
	flag.Parse()

	body, err := read(*url, flag.Arg(0), *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}
	if err := obs.LintExposition(strings.NewReader(body)); err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}
	var missing []string
	for _, fam := range strings.Split(*require, ",") {
		if fam = strings.TrimSpace(fam); fam == "" {
			continue
		}
		if !strings.Contains(body, "\n"+fam) && !strings.HasPrefix(body, fam) {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: exposition valid but missing required families: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}
	fmt.Println("metriclint: ok")
}

// read fetches the exposition body from -url, a file argument, or stdin.
func read(url, path string, timeout time.Duration) (string, error) {
	switch {
	case url != "":
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("scrape %s: status %s", url, resp.Status)
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		return string(b), err
	case path != "":
		b, err := os.ReadFile(path)
		return string(b), err
	default:
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
}
