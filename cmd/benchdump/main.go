// Command benchdump converts `go test -bench` output into a machine-readable
// BENCH.json so successive PRs can track the performance trajectory of the
// paper-artifact benchmarks (ns/op, B/op, allocs/op per benchmark), and
// compares two such snapshots as a delta table with an optional regression
// gate for CI.
//
// Record mode:
//
//	go test -bench . -benchmem -run xxx . | go run ./cmd/benchdump -out BENCH.json
//
// Lines that are not benchmark results (test chatter, pkg headers) are
// ignored; the cpu/scenario context lines are captured when present. Entries
// that ran exactly one iteration are kept but flagged on stderr: a
// 1-iteration number is a single sample, not a statistic — raise -benchtime
// if it matters.
//
// Compare mode:
//
//	go run ./cmd/benchdump -compare \
//	    [-gate RunAllSerial,Table6Cost] [-tolerance 0.15] \
//	    [-gate-ns -ns-tolerance 0.30] BASE.json NEW.json
//
// prints old/new/delta for ns/op, B/op and allocs/op of every benchmark
// present in either file. With -gate, the named benchmarks' B/op and
// allocs/op must not regress by more than -tolerance (fractional, default
// 0.15): any gated benchmark that does — or that is gone from the NEW
// file — fails the run with exit status 1. A gated benchmark present only
// in NEW is advisory (a benchmark added in the same change as its gate
// entry has no baseline yet); one present in neither file still fails
// loudly (renamed benchmark or gate typo). Gates compare the allocation
// metrics by default, not ns/op, on purpose: allocated bytes and counts are
// stable across machines and load, wall time is not.
//
// -gate-ns opts gated benchmarks into wall-time regression gating too, with
// its own (wider) -ns-tolerance — off by default so loaded single-CPU CI
// machines don't flake the build. Entries that ran exactly one iteration on
// either side are exempt from the ns/op gate and reported as advisory: a
// single sample is not a statistic to fail a build on (B/op and allocs/op
// stay hard-gated — allocation counts are exact even at 1 iteration).
//
// Ratio-check mode:
//
//	go run ./cmd/benchdump -ratio-check [-ratio-max 0.9] BENCH_MULTICORE.json
//
// verifies that the snapshot's RunAllParallel wall time is at most
// -ratio-max of RunAllSerial's — the multi-core scaling pin behind `make
// bench-multicore`. The verdict is gating only when the snapshot was
// recorded on a host with >= 4 CPUs (the File carries num_cpu): with
// fewer cores GOMAXPROCS=4 just time-slices one or two ways and the
// ratio hovers around 1.0, so on 1-CPU CI the check prints its verdict
// as advisory and exits 0.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the BENCH.json schema.
type File struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	CPU         string `json:"cpu,omitempty"`
	// Scenario names the experiment scenario the benchmarks ran (the
	// artifact benchmarks share one suite), so successive BENCH.json
	// snapshots compare like against like.
	Scenario   string   `json:"scenario,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output path (- for stdout)")
	scn := flag.String("scenario", "", "scenario name the benchmarks were sized by (default: the `scenario:` context line the bench suite prints)")
	compare := flag.Bool("compare", false, "compare two BENCH.json files (args: BASE NEW), print a delta table")
	gate := flag.String("gate", "", "comma-separated benchmark names whose B/op must not regress past -tolerance (compare mode)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional B/op regression for gated benchmarks (compare mode)")
	gateNs := flag.Bool("gate-ns", false, "also gate ns/op of the -gate benchmarks (compare mode; 1-iteration entries stay advisory)")
	nsTolerance := flag.Float64("ns-tolerance", 0.30, "allowed fractional ns/op regression for gated benchmarks when -gate-ns is set")
	ratioCheck := flag.Bool("ratio-check", false, "check the RunAllParallel/RunAllSerial ns ratio of one snapshot (arg: FILE.json); gating only when recorded on >=4 CPUs")
	ratioMax := flag.Float64("ratio-max", 0.9, "max allowed parallel/serial ns ratio for -ratio-check on >=4-CPU snapshots")
	flag.Parse()

	if *ratioCheck {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchdump: -ratio-check needs exactly one arg: FILE.json")
			os.Exit(2)
		}
		f, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
			os.Exit(2)
		}
		if err := checkRatio(os.Stdout, f, *ratioMax); err != nil {
			fmt.Fprintf(os.Stderr, "benchdump: RATIO FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchdump: -compare needs exactly two args: BASE.json NEW.json")
			os.Exit(2)
		}
		base, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
			os.Exit(2)
		}
		cur, err := readFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
			os.Exit(2)
		}
		var gates []string
		for _, g := range strings.Split(*gate, ",") {
			if g = strings.TrimSpace(g); g != "" {
				gates = append(gates, g)
			}
		}
		failures := compareFiles(os.Stdout, base, cur, gates, *tolerance, *gateNs, *nsTolerance)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdump: GATE FAIL: %s\n", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		return
	}

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Scenario:    *scn,
	}
	scenarioLine, err := parseStream(os.Stdin, &f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: read: %v\n", err)
		os.Exit(1)
	}
	if f.Scenario == "" {
		f.Scenario = scenarioLine
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdump: no benchmark lines found on stdin")
		os.Exit(1)
	}
	for _, r := range f.Benchmarks {
		if r.Iterations == 1 {
			fmt.Fprintf(os.Stderr, "benchdump: warning: %s ran 1 iteration — a single sample, not a statistic; raise -benchtime for meaningful numbers\n", r.Name)
		}
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdump: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
}

// parseStream scans bench output into f and returns the `scenario:` context
// line's value (the -scenario flag wins over it at the call site).
func parseStream(r io.Reader, f *File) (scenario string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			f.CPU = strings.TrimSpace(cpu)
			continue
		}
		if s, ok := strings.CutPrefix(line, "scenario: "); ok {
			scenario = strings.TrimSpace(s)
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			f.Benchmarks = append(f.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	f.Benchmarks = stripGOMAXPROCSSuffix(f.Benchmarks)
	f.Benchmarks = dedupeKeepMostIterations(f.Benchmarks)
	return scenario, nil
}

// dedupeKeepMostIterations collapses duplicate benchmark names to a single
// entry, keeping the measurement with the most iterations. A recorded
// stream may legitimately contain duplicates: ci.sh re-runs the heavyweight
// RunAll pair at an iteration-count -benchtime after the main sweep so the
// snapshot carries a ≥2-iteration ns/op for them, and the higher-iteration
// run is the better statistic. First-seen order is preserved.
func dedupeKeepMostIterations(rs []Result) []Result {
	at := make(map[string]int, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if i, ok := at[r.Name]; ok {
			if r.Iterations > out[i].Iterations {
				out[i] = r
			}
			continue
		}
		at[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFigure2aRTT-8  852  1407703 ns/op  288455 B/op  3548 allocs/op
//
// The name is kept in full (minus the Benchmark prefix): per-line suffix
// stripping cannot tell a GOMAXPROCS suffix from a sub-benchmark name that
// ends in a number (TelemetryIngest/shards-1 vs shards-4 used to collapse
// into one duplicated key). stripGOMAXPROCSSuffix handles the real suffix
// across the whole run.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, seen
}

// stripGOMAXPROCSSuffix removes the `-N` GOMAXPROCS suffix go test appends
// to every benchmark of a run (only when GOMAXPROCS != 1). It is a run-wide
// property, so it is stripped only when every name of a multi-benchmark run
// carries the same all-digits suffix — a sub-benchmark that legitimately
// ends in `-1` on a single-CPU machine (where go test appends nothing)
// survives intact, and mixed `-cpu 1,2,4` sweeps keep their distinct names.
// A single-benchmark run is inherently ambiguous (one shared suffix is no
// evidence), so it is recorded verbatim; record full sweeps, not one
// filtered benchmark, when the snapshot feeds compare mode.
func stripGOMAXPROCSSuffix(rs []Result) []Result {
	if len(rs) < 2 {
		return rs
	}
	suffix := ""
	for i, r := range rs {
		cut := strings.LastIndex(r.Name, "-")
		if cut <= 0 {
			return rs
		}
		n := r.Name[cut:]
		if len(n) < 2 {
			return rs
		}
		if _, err := strconv.Atoi(n[1:]); err != nil {
			return rs
		}
		if i == 0 {
			suffix = n
		} else if n != suffix {
			return rs
		}
	}
	for i := range rs {
		rs[i].Name = strings.TrimSuffix(rs[i].Name, suffix)
	}
	return rs
}

func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compareFiles writes the delta table to w and returns the gate failures.
func compareFiles(w io.Writer, base, cur *File, gates []string, tolerance float64, gateNs bool, nsTolerance float64) []string {
	baseBy := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	curBy := map[string]Result{}
	for _, r := range cur.Benchmarks {
		curBy[r.Name] = r
	}
	names := make([]string, 0, len(baseBy)+len(curBy))
	for n := range baseBy {
		names = append(names, n)
	}
	for n := range curBy {
		if _, ok := baseBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	gated := map[string]bool{}
	for _, g := range gates {
		gated[g] = true
	}

	fmt.Fprintf(w, "%-34s %13s %13s %8s %13s %13s %8s %10s %10s %8s\n",
		"benchmark", "ns/op old", "ns/op new", "Δ", "B/op old", "B/op new", "Δ",
		"allocs old", "allocs new", "Δ")
	var failures []string
	for _, n := range names {
		b, hasBase := baseBy[n]
		c, hasCur := curBy[n]
		mark := " "
		if gated[n] {
			mark = "*"
		}
		switch {
		case !hasBase:
			fmt.Fprintf(w, "%s%-33s %13s %13.0f %8s %13s %13.0f %8s %10s %10.0f %8s\n",
				mark, n, "-", c.NsPerOp, "new", "-", c.BytesPerOp, "new", "-", c.AllocsPerOp, "new")
		case !hasCur:
			fmt.Fprintf(w, "%s%-33s %13.0f %13s %8s %13.0f %13s %8s %10.0f %10s %8s\n",
				mark, n, b.NsPerOp, "-", "gone", b.BytesPerOp, "-", "gone", b.AllocsPerOp, "-", "gone")
		default:
			fmt.Fprintf(w, "%s%-33s %13.0f %13.0f %8s %13.0f %13.0f %8s %10.0f %10.0f %8s\n",
				mark, n, b.NsPerOp, c.NsPerOp, pct(b.NsPerOp, c.NsPerOp),
				b.BytesPerOp, c.BytesPerOp, pct(b.BytesPerOp, c.BytesPerOp),
				b.AllocsPerOp, c.AllocsPerOp, pct(b.AllocsPerOp, c.AllocsPerOp))
		}
		if gated[n] {
			switch {
			case !hasBase && hasCur:
				// A gated benchmark that exists only in NEW was added in the
				// same change as its gate entry: there is no baseline to
				// regress against yet, so it is advisory, not a failure —
				// the refreshed snapshot becomes its baseline.
				fmt.Fprintf(w, "(advisory: gated %s is new — no baseline yet)\n", n)
			case !hasCur:
				failures = append(failures, fmt.Sprintf("%s: missing from new file", n))
			default:
				if regressed(b.BytesPerOp, c.BytesPerOp, tolerance) {
					failures = append(failures,
						fmt.Sprintf("%s: B/op %0.f → %0.f (%s), over the %+.0f%% budget",
							n, b.BytesPerOp, c.BytesPerOp, pct(b.BytesPerOp, c.BytesPerOp), tolerance*100))
				}
				// allocs/op is gated too: a swarm of tiny allocations can
				// regress GC pressure 100× while staying inside the B/op
				// budget (the Figure 14 win was an allocs/op win first).
				if regressed(b.AllocsPerOp, c.AllocsPerOp, tolerance) {
					failures = append(failures,
						fmt.Sprintf("%s: allocs/op %0.f → %0.f (%s), over the %+.0f%% budget",
							n, b.AllocsPerOp, c.AllocsPerOp, pct(b.AllocsPerOp, c.AllocsPerOp), tolerance*100))
				}
				if gateNs {
					switch {
					case b.Iterations == 1 || c.Iterations == 1:
						// A 1-iteration wall time is one sample, not a
						// statistic — never fail the build on it.
						if regressed(b.NsPerOp, c.NsPerOp, nsTolerance) {
							fmt.Fprintf(w, "(advisory: %s ns/op %0.f → %0.f (%s) exceeds the ns budget but ran %d/%d iterations — not gated)\n",
								n, b.NsPerOp, c.NsPerOp, pct(b.NsPerOp, c.NsPerOp), b.Iterations, c.Iterations)
						}
					case regressed(b.NsPerOp, c.NsPerOp, nsTolerance):
						failures = append(failures,
							fmt.Sprintf("%s: ns/op %0.f → %0.f (%s), over the %+.0f%% ns budget",
								n, b.NsPerOp, c.NsPerOp, pct(b.NsPerOp, c.NsPerOp), nsTolerance*100))
					}
				}
			}
		}
	}
	// A gated name present in neither file never enters the loop above —
	// a renamed benchmark or a typo in the gate list must fail loudly, not
	// silently disarm the gate.
	for _, g := range gates {
		_, inBase := baseBy[g]
		_, inCur := curBy[g]
		if !inBase && !inCur {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from both files (renamed? typo in -gate?)", g))
		}
	}
	if len(gates) > 0 {
		fmt.Fprintf(w, "(* = gated: B/op and allocs/op may not regress more than %.0f%%)\n", tolerance*100)
		if gateNs {
			fmt.Fprintf(w, "(gated ns/op budget: %.0f%%; 1-iteration entries advisory)\n", nsTolerance*100)
		}
	}
	return failures
}

// checkRatio verifies the multi-core scaling pin of a snapshot: the RunAll
// reproduction at -parallel 0 must actually be faster than the serial run
// when the recording host had cores to scale across. Below 4 recorded CPUs
// the ratio carries no signal (GOMAXPROCS=4 on a 1-CPU box just time-slices,
// and the parallel run's scheduling overhead can even push it past 1.0), so
// the verdict is printed as advisory and nil is returned.
func checkRatio(w io.Writer, f *File, maxRatio float64) error {
	var serial, parallel *Result
	for i := range f.Benchmarks {
		switch f.Benchmarks[i].Name {
		case "RunAllSerial":
			serial = &f.Benchmarks[i]
		case "RunAllParallel":
			parallel = &f.Benchmarks[i]
		}
	}
	if serial == nil || parallel == nil {
		return fmt.Errorf("snapshot must contain both RunAllSerial and RunAllParallel (have serial=%v parallel=%v)",
			serial != nil, parallel != nil)
	}
	if serial.NsPerOp <= 0 {
		return fmt.Errorf("RunAllSerial ns/op is %v — not a usable denominator", serial.NsPerOp)
	}
	ratio := parallel.NsPerOp / serial.NsPerOp
	fmt.Fprintf(w, "parallel/serial ratio: %.3f (RunAllParallel %.0f ns/op / RunAllSerial %.0f ns/op; recorded on %d CPUs, budget %.2f)\n",
		ratio, parallel.NsPerOp, serial.NsPerOp, f.NumCPU, maxRatio)
	if f.NumCPU < 4 {
		if ratio > maxRatio {
			fmt.Fprintf(w, "(advisory: ratio %.3f exceeds the %.2f budget, but the snapshot was recorded on %d CPU(s) — no parallelism to measure, not gated)\n",
				ratio, maxRatio, f.NumCPU)
		}
		return nil
	}
	if ratio > maxRatio {
		return fmt.Errorf("parallel/serial ratio %.3f exceeds the %.2f budget on a %d-CPU snapshot — parallel reproduction is not scaling",
			ratio, maxRatio, f.NumCPU)
	}
	return nil
}

// regressed reports whether new exceeds old by more than the fractional
// tolerance. A zero baseline only passes a zero measurement.
func regressed(old, new, tolerance float64) bool {
	if old == 0 {
		return new > 0
	}
	return (new-old)/old > tolerance
}

func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}
