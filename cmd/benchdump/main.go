// Command benchdump converts `go test -bench` output into a machine-readable
// BENCH.json so successive PRs can track the performance trajectory of the
// paper-artifact benchmarks (ns/op, B/op, allocs/op per benchmark).
//
// Usage:
//
//	go test -bench . -benchmem -run xxx ./... | go run ./cmd/benchdump -out BENCH.json
//
// Lines that are not benchmark results (test chatter, pkg headers) are
// ignored; the cpu/goos context lines are captured when present.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the BENCH.json schema.
type File struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	CPU         string `json:"cpu,omitempty"`
	// Scenario names the experiment scenario the benchmarks ran (the
	// artifact benchmarks share one suite), so successive BENCH.json
	// snapshots compare like against like.
	Scenario   string   `json:"scenario,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output path (- for stdout)")
	scn := flag.String("scenario", "", "scenario name the benchmarks were sized by (default: the `scenario:` context line the bench suite prints)")
	flag.Parse()

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Scenario:    *scn,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			f.CPU = strings.TrimSpace(cpu)
			continue
		}
		// The bench suite prints its own `scenario:` context line; an
		// explicit -scenario flag wins over it.
		if sc, ok := strings.CutPrefix(line, "scenario: "); ok && *scn == "" {
			f.Scenario = strings.TrimSpace(sc)
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			f.Benchmarks = append(f.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: read: %v\n", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdump: no benchmark lines found on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdump: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFigure2aRTT-8  852  1407703 ns/op  288455 B/op  3548 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, seen
}
