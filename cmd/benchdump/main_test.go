package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkFigure2aRTT-8  852  1407703 ns/op  288455 B/op  3548 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "Figure2aRTT-8" {
		t.Fatalf("name = %q, want the full name (suffix handling is run-wide)", r.Name)
	}
	if r.Iterations != 852 || r.NsPerOp != 1407703 || r.BytesPerOp != 288455 || r.AllocsPerOp != 3548 {
		t.Fatalf("parsed = %+v", r)
	}
	if _, ok := parseBenchLine("ok  	edgescope	1.2s"); ok {
		t.Fatal("non-bench line parsed")
	}
	if _, ok := parseBenchLine("BenchmarkX-8 notanumber 12 ns/op"); ok {
		t.Fatal("bad iteration count parsed")
	}
}

// TestSubBenchNamesSurviveOnSingleCPU pins the bug this parser used to have:
// on a GOMAXPROCS=1 machine go test appends no suffix, and the old per-line
// `-N` stripping collapsed TelemetryIngest/shards-1 and /shards-4 into one
// duplicated BENCH.json key.
func TestSubBenchNamesSurviveOnSingleCPU(t *testing.T) {
	out := `goos: linux
scenario: small
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTelemetryIngest/shards-1  100  23854 ns/op  1008 B/op  6 allocs/op
BenchmarkTelemetryIngest/shards-4  100  20639 ns/op  1104 B/op  7 allocs/op
BenchmarkSketchAdd  100  661 ns/op  16 B/op  1 allocs/op
`
	var f File
	scenario, err := parseStream(strings.NewReader(out), &f)
	if err != nil {
		t.Fatal(err)
	}
	if scenario != "small" {
		t.Fatalf("scenario = %q", scenario)
	}
	if f.CPU == "" {
		t.Fatal("cpu line not captured")
	}
	want := []string{"TelemetryIngest/shards-1", "TelemetryIngest/shards-4", "SketchAdd"}
	if len(f.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d", len(f.Benchmarks), len(want))
	}
	for i, w := range want {
		if f.Benchmarks[i].Name != w {
			t.Fatalf("name[%d] = %q, want %q", i, f.Benchmarks[i].Name, w)
		}
	}
}

// TestGOMAXPROCSSuffixStrippedWhenUniform covers the multi-CPU case: every
// name of a run carries the same -N suffix, which is metadata, not identity.
func TestGOMAXPROCSSuffixStrippedWhenUniform(t *testing.T) {
	out := `BenchmarkTelemetryIngest/shards-1-8  100  23854 ns/op
BenchmarkTelemetryIngest/shards-4-8  100  20639 ns/op
BenchmarkSketchAdd-8  100  661 ns/op
`
	var f File
	if _, err := parseStream(strings.NewReader(out), &f); err != nil {
		t.Fatal(err)
	}
	want := []string{"TelemetryIngest/shards-1", "TelemetryIngest/shards-4", "SketchAdd"}
	for i, w := range want {
		if f.Benchmarks[i].Name != w {
			t.Fatalf("name[%d] = %q, want %q", i, f.Benchmarks[i].Name, w)
		}
	}
}

// TestMixedCPUSweepKeepsSuffixes: a -cpu 1,2 sweep has non-uniform suffixes,
// all of which are identity and must survive.
func TestMixedCPUSweepKeepsSuffixes(t *testing.T) {
	out := `BenchmarkSketchAdd  100  661 ns/op
BenchmarkSketchAdd-2  100  400 ns/op
`
	var f File
	if _, err := parseStream(strings.NewReader(out), &f); err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks[0].Name != "SketchAdd" || f.Benchmarks[1].Name != "SketchAdd-2" {
		t.Fatalf("names = %q, %q", f.Benchmarks[0].Name, f.Benchmarks[1].Name)
	}
}

// TestSingleBenchmarkRunKeptVerbatim: with one benchmark there is no
// run-wide evidence that a trailing -N is the GOMAXPROCS suffix (a filtered
// `-bench 'shards-4$'` run on a 1-CPU machine ends in a legit -4), so the
// name is recorded as printed.
func TestSingleBenchmarkRunKeptVerbatim(t *testing.T) {
	var f File
	if _, err := parseStream(strings.NewReader("BenchmarkTelemetryIngest/shards-4  100  20639 ns/op\n"), &f); err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks[0].Name != "TelemetryIngest/shards-4" {
		t.Fatalf("name = %q, want verbatim", f.Benchmarks[0].Name)
	}
}

func TestCompareGate(t *testing.T) {
	base := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 50},
		{Name: "Steady", NsPerOp: 10, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "Removed", NsPerOp: 5, BytesPerOp: 5, AllocsPerOp: 1},
	}}
	cur := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", NsPerOp: 900, BytesPerOp: 1200, AllocsPerOp: 50}, // +20% B/op
		{Name: "Steady", NsPerOp: 11, BytesPerOp: 110, AllocsPerOp: 11},         // +10% — inside tolerance
		{Name: "Added", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1},
	}}
	var sb strings.Builder
	failures := compareFiles(&sb, base, cur, []string{"RunAllSerial", "Steady"}, 0.15, false, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "RunAllSerial") {
		t.Fatalf("failures = %v, want one RunAllSerial regression", failures)
	}
	tbl := sb.String()
	for _, want := range []string{"RunAllSerial", "Steady", "Removed", "Added", "+20.0%"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("delta table missing %q:\n%s", want, tbl)
		}
	}

	// A gated benchmark missing from the new snapshot must fail, not pass
	// silently.
	failures = compareFiles(&strings.Builder{}, base, cur, []string{"Removed"}, 0.15, false, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "Removed") {
		t.Fatalf("failures = %v, want missing-gate failure", failures)
	}

	// A gated name in NEITHER file (rename, gate-list typo) must also fail —
	// it never enters the name loop, which is how it could silently disarm
	// the gate.
	failures = compareFiles(&strings.Builder{}, base, cur, []string{"Tyop"}, 0.15, false, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "Tyop") {
		t.Fatalf("failures = %v, want missing-from-both failure", failures)
	}

	// Improvements and within-tolerance drift pass.
	failures = compareFiles(&strings.Builder{}, base, cur, nil, 0.15, false, 0.30)
	if len(failures) != 0 {
		t.Fatalf("ungated compare returned failures: %v", failures)
	}

	// allocs/op is gated independently of B/op: a swarm of tiny allocations
	// (allocs 100×, bytes flat) must trip the gate.
	tiny := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 5000},
	}}
	failures = compareFiles(&strings.Builder{}, base, tiny, []string{"RunAllSerial"}, 0.15, false, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocs/op regression", failures)
	}
}

func TestRegressed(t *testing.T) {
	if regressed(100, 110, 0.15) {
		t.Fatal("+10% inside a 15% budget flagged")
	}
	if !regressed(100, 120, 0.15) {
		t.Fatal("+20% outside a 15% budget not flagged")
	}
	if regressed(100, 50, 0.15) {
		t.Fatal("improvement flagged")
	}
	if !regressed(0, 1, 0.15) {
		t.Fatal("zero baseline must only accept zero")
	}
}

// TestNsGateOptIn covers the opt-in wall-time gate: off by default, its own
// wider tolerance when on, and 1-iteration entries advisory-only.
func TestNsGateOptIn(t *testing.T) {
	base := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", Iterations: 1, NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "SampleRTTBatch", Iterations: 5000, NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	cur := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", Iterations: 1, NsPerOp: 2000, BytesPerOp: 100, AllocsPerOp: 10},  // +100% ns, 1 iter
		{Name: "SampleRTTBatch", Iterations: 5000, NsPerOp: 150, BytesPerOp: 0, AllocsPerOp: 0}, // +50% ns
	}}
	gates := []string{"RunAllSerial", "SampleRTTBatch"}

	// Default: ns/op not gated at all — both regressions pass.
	if failures := compareFiles(&strings.Builder{}, base, cur, gates, 0.15, false, 0.30); len(failures) != 0 {
		t.Fatalf("ns regressions failed the gate without -gate-ns: %v", failures)
	}

	// Opted in: the multi-iteration regression fails, the 1-iteration one is
	// advisory only.
	var sb strings.Builder
	failures := compareFiles(&sb, base, cur, gates, 0.15, true, 0.30)
	if len(failures) != 1 || !strings.Contains(failures[0], "SampleRTTBatch") || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("failures = %v, want one SampleRTTBatch ns/op failure", failures)
	}
	if out := sb.String(); !strings.Contains(out, "advisory") || !strings.Contains(out, "RunAllSerial") {
		t.Fatalf("1-iteration ns regression not reported as advisory:\n%s", out)
	}

	// Inside the wider ns budget: passes.
	curOK := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", Iterations: 2, NsPerOp: 1100, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "SampleRTTBatch", Iterations: 5000, NsPerOp: 120, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	if failures := compareFiles(&strings.Builder{}, base, curOK, gates, 0.15, true, 0.30); len(failures) != 0 {
		t.Fatalf("within-ns-budget drift failed: %v", failures)
	}
}

// TestGatedNewBenchmarkIsAdvisory: a gated benchmark added in the same
// change as its gate entry (present only in NEW) must not fail the compare —
// there is no baseline to regress against.
func TestGatedNewBenchmarkIsAdvisory(t *testing.T) {
	base := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", Iterations: 2, NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
	}}
	cur := &File{Benchmarks: []Result{
		{Name: "RunAllSerial", Iterations: 2, NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "ObserveWalk", Iterations: 50, NsPerOp: 7, BytesPerOp: 7, AllocsPerOp: 7},
	}}
	var sb strings.Builder
	failures := compareFiles(&sb, base, cur, []string{"RunAllSerial", "ObserveWalk"}, 0.15, false, 0.30)
	if len(failures) != 0 {
		t.Fatalf("new gated benchmark failed the compare: %v", failures)
	}
	if out := sb.String(); !strings.Contains(out, "advisory") || !strings.Contains(out, "ObserveWalk") {
		t.Fatalf("new gated benchmark not noted as advisory:\n%s", out)
	}
}

// TestCheckRatio covers the multi-core scaling pin: gating only when the
// snapshot was recorded on >=4 CPUs, advisory otherwise, and loud failure
// when either half of the RunAll pair is missing.
func TestCheckRatio(t *testing.T) {
	pair := func(serialNs, parallelNs float64, cpus int) *File {
		return &File{NumCPU: cpus, Benchmarks: []Result{
			{Name: "RunAllSerial", Iterations: 2, NsPerOp: serialNs},
			{Name: "RunAllParallel", Iterations: 2, NsPerOp: parallelNs},
		}}
	}

	// Scaling snapshot on a multi-core host: passes.
	var sb strings.Builder
	if err := checkRatio(&sb, pair(1000, 400, 8), 0.9); err != nil {
		t.Fatalf("scaling 8-CPU snapshot failed: %v", err)
	}
	if !strings.Contains(sb.String(), "0.400") {
		t.Fatalf("ratio not reported:\n%s", sb.String())
	}

	// Non-scaling snapshot on a multi-core host: gates.
	if err := checkRatio(&strings.Builder{}, pair(1000, 980, 8), 0.9); err == nil {
		t.Fatal("non-scaling 8-CPU snapshot passed the gate")
	}

	// Same numbers recorded on 1 CPU: advisory only — GOMAXPROCS=4 on a
	// single core time-slices, the ratio carries no signal.
	sb.Reset()
	if err := checkRatio(&sb, pair(1000, 1050, 1), 0.9); err != nil {
		t.Fatalf("1-CPU snapshot gated: %v", err)
	}
	if !strings.Contains(sb.String(), "advisory") {
		t.Fatalf("1-CPU over-budget ratio not noted as advisory:\n%s", sb.String())
	}

	// Missing half of the pair: fails loudly regardless of CPU count.
	half := &File{NumCPU: 8, Benchmarks: []Result{
		{Name: "RunAllSerial", Iterations: 2, NsPerOp: 1000},
	}}
	if err := checkRatio(&strings.Builder{}, half, 0.9); err == nil {
		t.Fatal("snapshot missing RunAllParallel passed")
	}
	// Zero serial denominator: fails, no NaN/Inf verdicts.
	if err := checkRatio(&strings.Builder{}, pair(0, 400, 8), 0.9); err == nil {
		t.Fatal("zero-serial snapshot passed")
	}
}

// TestDedupeKeepsMostIterations: ci.sh re-benches the RunAll pair at an
// iteration-count -benchtime after the main sweep; the recorded snapshot
// must carry one entry per name — the higher-iteration measurement.
func TestDedupeKeepsMostIterations(t *testing.T) {
	out := `scenario: small
BenchmarkRunAllSerial  1  2000000000 ns/op  1000 B/op  50 allocs/op
BenchmarkSketchAdd  100  661 ns/op  16 B/op  1 allocs/op
BenchmarkRunAllSerial  2  1900000000 ns/op  1000 B/op  50 allocs/op
`
	var f File
	if _, err := parseStream(strings.NewReader(out), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (deduped)", len(f.Benchmarks))
	}
	if f.Benchmarks[0].Name != "RunAllSerial" || f.Benchmarks[0].Iterations != 2 {
		t.Fatalf("dedupe kept %+v, want the 2-iteration rerun in first-seen position", f.Benchmarks[0])
	}
	if f.Benchmarks[1].Name != "SketchAdd" {
		t.Fatalf("order disturbed: %+v", f.Benchmarks[1])
	}
}
