// Command throughput runs the iperf campaign of §3.2 (Figure 5): selected
// users measure down/uplink against 20 edge sites, and the tool reports the
// distance↔throughput correlation per access network.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	paper := flag.Bool("paper", false, "run at paper scale (25 users, 20 sites)")
	flag.Parse()

	scale := core.Small
	if *paper {
		scale = core.PaperScale
	}
	s := core.NewSuite(*seed, scale)
	if err := s.Figure5().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
}
