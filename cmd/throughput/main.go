// Command throughput runs the iperf campaign of §3.2 (Figure 5): selected
// users measure down/uplink against 20 edge sites, and the tool reports the
// distance↔throughput correlation per access network.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed override (default: the scenario's)")
	paper := flag.Bool("paper", false, "run at paper scale (25 users, 20 sites; alias for -scenario paper)")
	scn := flag.String("scenario", "", "scenario name from the registry, or path to a JSON spec (overrides -paper)")
	flag.Parse()

	scaleName := "small"
	if *paper {
		scaleName = "paper"
	}
	s, err := core.SuiteFromFlags(flag.CommandLine, *scn, scaleName, "seed", *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(2)
	}
	if err := s.Figure5().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
}
