// Command edgebench runs the crowd-sourced network measurement campaign
// (§3.1): deployment density, latency, jitter, hop breakdowns, co-location
// analysis, hop counts and inter-site RTTs — Table 1, Figures 2–4, Tables
// 3–4.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	paper := flag.Bool("paper", false, "run at paper scale (158 users, 30 repeats)")
	flag.Parse()

	scale := core.Small
	if *paper {
		scale = core.PaperScale
	}
	s := core.NewSuite(*seed, scale)
	for _, a := range []core.NamedArtifact{
		{ID: "table1", Desc: "deployment density", Artifact: s.Table1()},
		{ID: "fig2a", Desc: "median RTT", Artifact: s.Figure2a()},
		{ID: "fig2b", Desc: "RTT jitter", Artifact: s.Figure2b()},
		{ID: "table3", Desc: "hop breakdown", Artifact: s.Table3()},
		{ID: "table4", Desc: "co-location", Artifact: s.Table4()},
		{ID: "fig3", Desc: "hop counts", Artifact: s.Figure3()},
		{ID: "fig4", Desc: "inter-site RTT", Artifact: s.Figure4()},
	} {
		fmt.Printf("\n# %s — %s\n", a.ID, a.Desc)
		if err := a.Artifact.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "edgebench:", err)
			os.Exit(1)
		}
	}
}
