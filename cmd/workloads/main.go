// Command workloads runs the §4 workload characterisation (Figures 8–13)
// over generated traces, or over a trace previously written by tracegen.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/analysis"
	"edgescope/internal/core"
	"edgescope/internal/report"
	"edgescope/internal/vm"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed override (default: the scenario's)")
	paper := flag.Bool("paper", false, "paper-scale traces (4 weeks; alias for -scenario paper)")
	scn := flag.String("scenario", "", "scenario name from the registry, or path to a JSON spec (overrides -paper)")
	tracePath := flag.String("trace", "", "optional NEP trace file from tracegen (skips generation)")
	flag.Parse()

	scaleName := "small"
	if *paper {
		scaleName = "paper"
	}
	s, err := core.SuiteFromFlags(flag.CommandLine, *scn, scaleName, "seed", *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloads:", err)
		os.Exit(2)
	}

	if *tracePath != "" {
		d, err := vm.Load(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloads:", err)
			os.Exit(1)
		}
		renderLoaded(d)
		return
	}

	for _, a := range []core.NamedArtifact{
		{ID: "fig8", Desc: "VM sizes", Artifact: s.Figure8()},
		{ID: "fig9", Desc: "VMs per app", Artifact: s.Figure9()},
		{ID: "fig10", Desc: "CPU utilisation", Artifact: s.Figure10()},
		{ID: "fig11", Desc: "cross-site/server imbalance", Artifact: s.Figure11()},
		{ID: "fig12", Desc: "per-app cross-VM gap", Artifact: s.Figure12()},
		{ID: "fig13", Desc: "weekly bandwidth volatility", Artifact: s.Figure13()},
	} {
		fmt.Printf("\n# %s — %s\n", a.ID, a.Desc)
		if err := a.Artifact.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "workloads:", err)
			os.Exit(1)
		}
	}
}

// renderLoaded characterises a single loaded trace (no cloud comparison).
func renderLoaded(d *vm.Dataset) {
	sz := analysis.VMSizes(d)
	t := &report.Table{
		Title:   fmt.Sprintf("%s trace: VM sizing", d.Platform),
		Headers: []string{"median-vcpus", "median-mem-gb", "vms", "sites"},
	}
	t.AddRow(sz.MedianVCPUs, sz.MedianMemGB, len(d.VMs), len(d.Sites))
	_ = t.Render(os.Stdout)

	util := analysis.Utilization(d)
	f := &report.Figure{Title: "CPU utilisation", XLabel: "CPU %", YLabel: "CDF"}
	f.AddCDF("mean-cpu", util.MeanCPU)
	f.AddCDF("p95max-cpu", util.P95MaxCPU)
	_ = f.Render(os.Stdout)
}
