// Command billing runs the §4.5 monetary-cost study: Table 6 (cost of the
// heaviest edge apps on two virtual cloud baselines, normalised to NEP) and
// Table 7 (pricing-model worked examples).
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	paper := flag.Bool("paper", false, "paper scale (50 heaviest apps, 4-week trace)")
	flag.Parse()

	scale := core.Small
	if *paper {
		scale = core.PaperScale
	}
	s := core.NewSuite(*seed, scale)
	for _, a := range []core.NamedArtifact{
		{ID: "table6", Desc: "cost ratios", Artifact: s.Table6()},
		{ID: "table7", Desc: "pricing examples", Artifact: s.Table7()},
	} {
		fmt.Printf("\n# %s — %s\n", a.ID, a.Desc)
		if err := a.Artifact.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "billing:", err)
			os.Exit(1)
		}
	}
}
