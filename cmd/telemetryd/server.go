package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/telemetry"
	"edgescope/internal/telemetry/cluster"
)

// muxConfig assembles the daemon's HTTP surface; split from main so tests
// can stand the exact production mux up against httptest.
type muxConfig struct {
	ing *telemetry.Ingestor
	// reg, when set, serves Prometheus text exposition on GET /metrics.
	reg *obs.Registry
	// pprof mounts net/http/pprof under /debug/pprof/ — opt-in because the
	// profile endpoints can pause the process (heap dumps, CPU profiles) and
	// a telemetry daemon's default surface should be read-only-cheap.
	pprof bool
	// nodeID, when non-empty, marks a cluster node and mounts the rebalance
	// admin plane (/admin/*, /sketches/partition) the frontend's migrator
	// drives during join/leave/drain handoffs.
	nodeID string
	start  time.Time
	log    *slog.Logger
}

// buildMux wires every endpoint of the daemon onto a fresh mux.
func buildMux(cfg muxConfig) *http.ServeMux {
	if cfg.log == nil {
		cfg.log = slog.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		accepted := 0
		st, err := telemetry.ReadJSONL(r.Body, func(e telemetry.Envelope) {
			if cfg.ing.Offer(e) {
				accepted++
			}
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, map[string]int{
			"decoded":   st.Decoded,
			"malformed": st.Malformed,
			"accepted":  accepted,
			"dropped":   st.Decoded - accepted,
		})
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := cfg.ing.Query(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, res)
	})
	mux.HandleFunc("GET /keys", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(cfg.log, w, cfg.ing.Keys())
	})
	// /sketches is the scatter half of a cluster query: the matching
	// (window, key) rollups in exact binary form, for a front-end to merge
	// (cluster.Frontend). Served in every role — a single-node daemon is
	// just a one-member cluster to whoever wants to aggregate it.
	mux.HandleFunc("GET /sketches", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		page, err := cfg.ing.MatchSketches(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, page)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := cfg.ing.Health()
		body := map[string]any{
			"status":         h.Status,
			"reasons":        h.Reasons,
			"durable":        h.Durable,
			"uptime_seconds": int(time.Since(cfg.start).Seconds()),
			"shards":         h.Shards,
			"total":          h.Total,
			"recovery":       h.Recovery,
		}
		if h.Node != nil {
			// Self-describing membership: role plus the partitions this
			// node owns (and replicates), so an operator can curl any
			// member and see its place in the layout.
			body["node"] = h.Node
		}
		writeJSON(cfg.log, w, body)
	})
	if cfg.nodeID != "" {
		mountNodeAdmin(mux, cfg)
	}
	if cfg.reg != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.ExpositionContentType)
			if err := cfg.reg.WritePrometheus(w); err != nil {
				cfg.log.Error("metrics write failed", "err", err)
			}
		})
	}
	if cfg.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// mountNodeAdmin wires a cluster node's rebalance control plane — the HTTP
// realization of cluster.NodeAdmin that the frontend's migrator drives
// (through cluster.HTTPNode). Every leg maps one-to-one onto an Ingestor
// handoff primitive; errors come back as plain-text non-2xx bodies, which
// HTTPNode surfaces verbatim to the coordinator.
func mountNodeAdmin(mux *http.ServeMux, cfg muxConfig) {
	mux.HandleFunc("POST /admin/flush", func(w http.ResponseWriter, r *http.Request) {
		cfg.ing.Flush()
		writeJSON(cfg.log, w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /admin/freeze", func(w http.ResponseWriter, r *http.Request) {
		p, of, err := partOfParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := cfg.ing.FreezePartition(p, of); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(cfg.log, w, map[string]string{"status": "frozen"})
	})
	mux.HandleFunc("POST /admin/unfreeze", func(w http.ResponseWriter, r *http.Request) {
		p, of, err := partOfParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg.ing.UnfreezePartition(p, of)
		writeJSON(cfg.log, w, map[string]string{"status": "ok"})
	})
	// The partition-scoped cut of /sketches: this node's durable state for
	// one partition in exact binary sketch-page form — what a handoff ships.
	mux.HandleFunc("GET /sketches/partition", func(w http.ResponseWriter, r *http.Request) {
		p, of, err := partOfParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pages, err := cfg.ing.PartitionPages(p, of)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, pages)
	})
	mux.HandleFunc("POST /admin/absorb", func(w http.ResponseWriter, r *http.Request) {
		var pages []telemetry.SketchPage
		if err := json.NewDecoder(r.Body).Decode(&pages); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ack, err := cfg.ing.AbsorbPages(pages)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, ack)
	})
	mux.HandleFunc("POST /admin/drop", func(w http.ResponseWriter, r *http.Request) {
		p, of, err := partOfParams(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		dropped, err := cfg.ing.DropPartition(p, of)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, map[string]int{"dropped": dropped})
	})
	// An activated epoch's table, pushed by the migrator so this node's
	// /healthz self-description tracks the placement it actually serves.
	mux.HandleFunc("POST /admin/assignment", func(w http.ResponseWriter, r *http.Request) {
		var a cluster.Assignment
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := a.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !a.Member(cfg.nodeID) {
			http.Error(w, fmt.Sprintf("node %q is not a member of epoch %d", cfg.nodeID, a.Epoch), http.StatusConflict)
			return
		}
		cfg.ing.SetNodeInfo(a.NodeInfo(cfg.nodeID))
		writeJSON(cfg.log, w, map[string]any{"status": "ok", "epoch": a.Epoch})
	})
}

// partOfParams parses the ?partition=&of= selector the admin legs share.
func partOfParams(r *http.Request) (p, of int, err error) {
	q := r.URL.Query()
	if p, err = strconv.Atoi(q.Get("partition")); err != nil {
		return 0, 0, fmt.Errorf("bad partition: %w", err)
	}
	if of, err = strconv.Atoi(q.Get("of")); err != nil {
		return 0, 0, fmt.Errorf("bad of: %w", err)
	}
	return p, of, nil
}

// frontendMuxConfig assembles the query front-end's HTTP surface.
type frontendMuxConfig struct {
	pm      *cluster.PartitionMap
	router  *cluster.Router
	front   *cluster.Frontend
	tracker *cluster.HealthTracker
	// admin, when set, mounts the membership plane: GET /admin/assignment,
	// POST /admin/join|leave|drain|settle.
	admin *adminPlane
	reg   *obs.Registry
	start time.Time
	log   *slog.Logger
}

// buildFrontendMux wires the cluster front-end endpoints: /ingest routed
// per partition, /query and /keys scatter-gathered, /healthz reporting
// cluster membership. The response shapes match the single-node daemon's
// wherever the cluster has nothing to disclose — a complete /query answer
// is byte-identical to a single process's.
func buildFrontendMux(cfg frontendMuxConfig) *http.ServeMux {
	if cfg.log == nil {
		cfg.log = slog.Default()
	}
	// The router wraps a RetryClient, which is single-goroutine by
	// contract — serialize ingest requests over it.
	var ingestMu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		accepted := 0
		ingestMu.Lock()
		st, err := telemetry.ReadJSONL(r.Body, func(e telemetry.Envelope) {
			if cfg.router.Send(e) {
				accepted++
			}
		})
		ingestMu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, map[string]int{
			"decoded":   st.Decoded,
			"malformed": st.Malformed,
			"accepted":  accepted,
			"dropped":   st.Decoded - accepted,
		})
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := cfg.front.Query(r.Context(), spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, res)
	})
	mux.HandleFunc("GET /keys", func(w http.ResponseWriter, r *http.Request) {
		keys, missing := cfg.front.Keys(r.Context())
		if len(missing) > 0 {
			// The body stays the plain inventory (so a complete answer is
			// byte-identical to a node's /keys); partiality rides on the
			// status code and a header.
			w.Header().Set("X-Missing-Nodes", strings.Join(missing, ","))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusPartialContent)
		}
		writeJSON(cfg.log, w, keys)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := cfg.tracker.Snapshot()
		status := "ok"
		nodes := make([]map[string]any, 0, len(snap))
		for _, n := range snap {
			if n.State != "up" {
				status = "degraded"
			}
			nodes = append(nodes, map[string]any{
				"node":       n.Node,
				"state":      n.State,
				"owns":       cfg.pm.OwnedBy(n.Node),
				"replicates": cfg.pm.ReplicatedBy(n.Node),
			})
		}
		writeJSON(cfg.log, w, map[string]any{
			"status":             status,
			"node":               &telemetry.NodeInfo{Role: "frontend"},
			"epoch":              cfg.pm.Epoch(),
			"partitions":         cfg.pm.Partitions(),
			"replication_factor": cfg.pm.Config().ReplicationFactor,
			"nodes":              nodes,
			"router":             cfg.router.Stats(),
			"uptime_seconds":     int(time.Since(cfg.start).Seconds()),
		})
	})
	if cfg.admin != nil {
		cfg.admin.mount(mux, cfg.log)
	}
	if cfg.reg != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.ExpositionContentType)
			if err := cfg.reg.WritePrometheus(w); err != nil {
				cfg.log.Error("metrics write failed", "err", err)
			}
		})
	}
	return mux
}

func writeJSON(log *slog.Logger, w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Error("write response failed", "err", err)
	}
}

// specFromURL parses /query parameters into a QuerySpec.
func specFromURL(r *http.Request) (telemetry.QuerySpec, error) {
	q := r.URL.Query()
	spec := telemetry.QuerySpec{
		Metric: q.Get("metric"),
		Region: q.Get("region"),
		Net:    q.Get("net"),
	}
	var err error
	if spec.Quantiles, err = parseFloats(q.Get("q")); err != nil {
		return spec, fmt.Errorf("bad q: %w", err)
	}
	if spec.CDFAt, err = parseFloats(q.Get("cdf")); err != nil {
		return spec, fmt.Errorf("bad cdf: %w", err)
	}
	if v := q.Get("from"); v != "" {
		if spec.From, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("bad from: %w", err)
		}
	}
	if v := q.Get("to"); v != "" {
		if spec.To, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("bad to: %w", err)
		}
	}
	return spec, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
