package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/telemetry"
)

// muxConfig assembles the daemon's HTTP surface; split from main so tests
// can stand the exact production mux up against httptest.
type muxConfig struct {
	ing *telemetry.Ingestor
	// reg, when set, serves Prometheus text exposition on GET /metrics.
	reg *obs.Registry
	// pprof mounts net/http/pprof under /debug/pprof/ — opt-in because the
	// profile endpoints can pause the process (heap dumps, CPU profiles) and
	// a telemetry daemon's default surface should be read-only-cheap.
	pprof bool
	start time.Time
	log   *slog.Logger
}

// buildMux wires every endpoint of the daemon onto a fresh mux.
func buildMux(cfg muxConfig) *http.ServeMux {
	if cfg.log == nil {
		cfg.log = slog.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		accepted := 0
		st, err := telemetry.ReadJSONL(r.Body, func(e telemetry.Envelope) {
			if cfg.ing.Offer(e) {
				accepted++
			}
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, map[string]int{
			"decoded":   st.Decoded,
			"malformed": st.Malformed,
			"accepted":  accepted,
			"dropped":   st.Decoded - accepted,
		})
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := cfg.ing.Query(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(cfg.log, w, res)
	})
	mux.HandleFunc("GET /keys", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(cfg.log, w, cfg.ing.Keys())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := cfg.ing.Health()
		writeJSON(cfg.log, w, map[string]any{
			"status":         h.Status,
			"reasons":        h.Reasons,
			"durable":        h.Durable,
			"uptime_seconds": int(time.Since(cfg.start).Seconds()),
			"shards":         h.Shards,
			"total":          h.Total,
			"recovery":       h.Recovery,
		})
	})
	if cfg.reg != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.ExpositionContentType)
			if err := cfg.reg.WritePrometheus(w); err != nil {
				cfg.log.Error("metrics write failed", "err", err)
			}
		})
	}
	if cfg.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(log *slog.Logger, w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Error("write response failed", "err", err)
	}
}

// specFromURL parses /query parameters into a QuerySpec.
func specFromURL(r *http.Request) (telemetry.QuerySpec, error) {
	q := r.URL.Query()
	spec := telemetry.QuerySpec{
		Metric: q.Get("metric"),
		Region: q.Get("region"),
		Net:    q.Get("net"),
	}
	var err error
	if spec.Quantiles, err = parseFloats(q.Get("q")); err != nil {
		return spec, fmt.Errorf("bad q: %w", err)
	}
	if spec.CDFAt, err = parseFloats(q.Get("cdf")); err != nil {
		return spec, fmt.Errorf("bad cdf: %w", err)
	}
	if v := q.Get("from"); v != "" {
		if spec.From, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("bad from: %w", err)
		}
	}
	if v := q.Get("to"); v != "" {
		if spec.To, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("bad to: %w", err)
		}
	}
	return spec, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
