package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"edgescope/internal/telemetry"
	"edgescope/internal/telemetry/cluster"
)

// The frontend's membership plane. A running frontend admits, drains and
// removes nodes without any daemon restarting: POST /admin/join proposes
// the next epoch, the migrator streams sketch-page handoffs from the
// losing owners, and the epoch activates atomically once every moved
// partition is rebuilt (see internal/telemetry/cluster). The activated
// table is persisted to cluster-state.json under -data, so a restarted
// frontend resumes the membership it last activated rather than the
// -peers flag it was born with.

// peerSet is the frontend's live node registry: one HTTP client per
// member, mutated as nodes join and leave while the router, prober and
// scatter-gather keep reading it. All three consume it through closures
// that look ids up under the lock, so a membership change is visible to
// the data plane the moment it lands.
type peerSet struct {
	timeout time.Duration

	mu    sync.RWMutex
	nodes map[string]*cluster.HTTPNode
	urls  map[string]string
}

// newPeerSet builds the registry from an id→url map.
func newPeerSet(urls map[string]string, timeout time.Duration) *peerSet {
	ps := &peerSet{
		timeout: timeout,
		nodes:   make(map[string]*cluster.HTTPNode, len(urls)),
		urls:    make(map[string]string, len(urls)),
	}
	for id, u := range urls {
		ps.add(id, u)
	}
	return ps
}

// add wires (or rewires) one member's client and returns it.
func (ps *peerSet) add(id, url string) *cluster.HTTPNode {
	n := cluster.NewHTTPNode(url, &http.Client{Timeout: ps.timeout})
	ps.mu.Lock()
	ps.nodes[id] = n
	ps.urls[id] = url
	ps.mu.Unlock()
	return n
}

// remove unwires a departed member.
func (ps *peerSet) remove(id string) {
	ps.mu.Lock()
	delete(ps.nodes, id)
	delete(ps.urls, id)
	ps.mu.Unlock()
}

// get returns a member's client, nil when unknown.
func (ps *peerSet) get(id string) *cluster.HTTPNode {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.nodes[id]
}

// urlsCopy snapshots the id→url map (for persistence).
func (ps *peerSet) urlsCopy() map[string]string {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make(map[string]string, len(ps.urls))
	for id, u := range ps.urls {
		out[id] = u
	}
	return out
}

// transport is the router's per-node delivery leg over the live registry.
func (ps *peerSet) transport() cluster.Transport {
	return func(node string, e telemetry.Envelope) bool {
		n := ps.get(node)
		if n == nil {
			return false
		}
		return n.Ingest(e)
	}
}

// prober is the health tracker's probe leg over the live registry.
func (ps *peerSet) prober() cluster.Prober {
	return func(node string) cluster.ProbeResult {
		n := ps.get(node)
		if n == nil {
			return cluster.ProbeResult{}
		}
		return n.Probe()
	}
}

// clusterState is what the frontend persists per activated epoch: the
// assignment table plus the member URLs needed to rebuild the data plane
// on restart (URLs are deployment facts the assignment itself doesn't
// carry).
type clusterState struct {
	Assignment cluster.Assignment `json:"assignment"`
	URLs       map[string]string  `json:"urls"`
}

// clusterStateFile is the frontend's persisted membership, under -data.
const clusterStateFile = "cluster-state.json"

// loadClusterState reads the persisted membership; (nil, nil) when the
// directory is unset or holds none — the caller falls back to -peers.
func loadClusterState(dir string) (*clusterState, error) {
	if dir == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(filepath.Join(dir, clusterStateFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var st clusterState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("%s: %w", clusterStateFile, err)
	}
	if err := st.Assignment.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", clusterStateFile, err)
	}
	return &st, nil
}

// saveClusterState writes the membership atomically (tmp + rename), so a
// crash mid-write leaves the previous epoch's file intact.
func saveClusterState(dir string, st clusterState) error {
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, clusterStateFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, clusterStateFile))
}

// adminPlane serves the frontend's membership endpoints. Join, leave and
// drain serialize through the migrator (one epoch transition at a time; a
// request landing mid-migration answers 409) while ingest and queries keep
// flowing on the epoch being superseded.
type adminPlane struct {
	pm    *cluster.PartitionMap
	mig   *cluster.Migrator
	peers *peerSet
	front *cluster.Frontend
	log   *slog.Logger
}

// mount wires the membership endpoints onto the frontend mux.
func (a *adminPlane) mount(mux *http.ServeMux, log *slog.Logger) {
	if a.log == nil {
		a.log = log
	}
	mux.HandleFunc("GET /admin/assignment", a.handleAssignment)
	mux.HandleFunc("POST /admin/join", a.handleJoin)
	mux.HandleFunc("POST /admin/leave", a.handleLeave)
	mux.HandleFunc("POST /admin/drain", a.handleDrain)
	mux.HandleFunc("POST /admin/settle", a.handleSettle)
}

// handleAssignment reports the current epoch's table and whether it is
// fully settled: "active" only when no migration is in flight and no
// partition is migrating or suspect — the convergence signal an operator
// (or ci smoke) polls after a join.
func (a *adminPlane) handleAssignment(w http.ResponseWriter, r *http.Request) {
	migrating := a.pm.Migrating()
	status := "active"
	if a.mig.Migrating() || len(migrating) > 0 {
		status = "migrating"
	}
	writeJSON(a.log, w, map[string]any{
		"status":     status,
		"epoch":      a.pm.Epoch(),
		"assignment": a.pm.Current(),
		"migrating":  migrating,
	})
}

// memberReq is the body join/leave/drain take; url is join-only.
type memberReq struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func decodeMember(r *http.Request) (memberReq, error) {
	var req memberReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return req, err
	}
	if strings.TrimSpace(req.ID) == "" {
		return req, fmt.Errorf("missing id")
	}
	return req, nil
}

// handleJoin admits one node: {"id": "n3", "url": "http://h3:8355"}. The
// response is the activated assignment; on any handoff failure the
// migration has already rolled back and the old epoch still routes.
func (a *adminPlane) handleJoin(w http.ResponseWriter, r *http.Request) {
	req, err := decodeMember(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	if a.pm.Current().Member(req.ID) {
		http.Error(w, fmt.Sprintf("%q is already a member", req.ID), http.StatusConflict)
		return
	}
	// Wire the data plane before the migration so the member is routable
	// and queryable the moment its epoch activates; unwire it all on
	// failure. The migration itself runs on a background context — an admin
	// client hanging up must not abort a half-shipped handoff.
	n := a.peers.add(req.ID, req.URL)
	a.front.AddClient(req.ID, n)
	next, err := a.mig.Join(context.Background(), req.ID, n)
	if err != nil {
		a.front.RemoveClient(req.ID)
		a.peers.remove(req.ID)
		a.log.Error("join failed", "node", req.ID, "err", err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	a.log.Info("member joined", "node", req.ID, "epoch", next.Epoch)
	writeJSON(a.log, w, next)
}

// handleLeave removes one member after handing its partitions to the
// survivors. The node's daemon can shut down once this returns.
func (a *adminPlane) handleLeave(w http.ResponseWriter, r *http.Request) {
	req, err := decodeMember(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	next, err := a.mig.Leave(context.Background(), req.ID)
	if err != nil {
		a.log.Error("leave failed", "node", req.ID, "err", err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	a.front.RemoveClient(req.ID)
	a.peers.remove(req.ID)
	a.log.Info("member left", "node", req.ID, "epoch", next.Epoch)
	writeJSON(a.log, w, next)
}

// handleDrain empties one member without removing it — the prelude to a
// clean leave, which then moves nothing.
func (a *adminPlane) handleDrain(w http.ResponseWriter, r *http.Request) {
	req, err := decodeMember(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	next, err := a.mig.Drain(context.Background(), req.ID)
	if err != nil {
		a.log.Error("drain failed", "node", req.ID, "err", err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	a.log.Info("member drained", "node", req.ID, "epoch", next.Epoch)
	writeJSON(a.log, w, next)
}

// handleSettle retries the stale-copy drops a past activation left
// suspect; queries stop reporting those partitions partial once it
// returns them clear.
func (a *adminPlane) handleSettle(w http.ResponseWriter, r *http.Request) {
	still := a.mig.Settle(context.Background())
	writeJSON(a.log, w, map[string]any{"suspect": still})
}
