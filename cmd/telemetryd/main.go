// Command telemetryd serves edgescope's streaming telemetry pipeline over
// HTTP: JSONL events in, windowed quantile-sketch rollups inside, live
// percentile queries out.
//
// Endpoints:
//
//	POST /ingest   JSONL body, one Envelope per line; responds with
//	               {"decoded":N,"malformed":N,"accepted":N,"dropped":N}
//	GET  /query    ?metric=rtt_ms[&region=..][&net=..][&from=RFC3339]
//	               [&to=RFC3339][&q=0.5,0.95,0.99][&cdf=10,50,100]
//	GET  /keys     every queryable dimension tuple with its event count
//	GET  /sketches the matching rollups in exact binary sketch form — the
//	               scatter half of a cluster query
//	GET  /healthz  liveness ("ok" or "degraded", with reasons), per-shard
//	               ingest + WAL accounting, the startup recovery report,
//	               and (cluster roles) this node's partition assignment
//	GET  /metrics  Prometheus text exposition: ingest, dedup, shedding, WAL,
//	               recovery and query-latency instrument families
//
// With -pprof the daemon additionally mounts Go's net/http/pprof profiling
// endpoints under /debug/pprof/ (opt-in: CPU profiles and heap dumps are not
// free, so the default surface stays read-only-cheap).
//
// With -data the daemon is durable: accepted events are written to a
// per-shard write-ahead log and periodic snapshots under the directory, and
// a restarted daemon recovers them — answering the same /query results as
// before the restart for everything fsynced (see the README's "Fault model
// & durability"). SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, drain the shard queues, fsync the WAL, write a final snapshot,
// exit 0.
//
// With -replay the daemon first streams a deterministic crowd campaign
// (latency + throughput, internal/crowd) through the pipeline, so a fresh
// process has data to query immediately. The campaign is sized by the
// declarative scenario layer: -scenario accepts any registered name or a
// JSON spec file, and the legacy -scale flag resolves onto the small/paper
// built-ins:
//
//	telemetryd -replay -scenario dense-metro &
//	curl 'localhost:8355/query?metric=rtt_ms&q=0.5,0.95,0.99'
//
// # Cluster roles
//
// -role selects how the daemon participates in a distributed deployment
// (internal/telemetry/cluster; see the README's "Distributed telemetry"):
//
//   - single (default): the standalone pipeline above.
//   - node: one partitioned member. -node-id names this member inside the
//     -peers list; /healthz self-describes the partitions it owns.
//   - frontend: the stateless routing + scatter-gather tier. POST /ingest
//     routes each envelope to its partition's owner (failing over to the
//     replica when the owner is marked down), GET /query fans out to every
//     node, merges sketch pages deterministically, and answers with
//     explicit partial-result semantics ("partial": true plus the missing
//     partition list) when members are unreachable.
//
// -peers lists the members as comma-separated id=url pairs in canonical
// order; duplicate or empty entries are rejected at startup, naming the
// offending peer. Every daemon of one cluster must be given the identical
// boot list, -partitions and -replicas. A frontend given -replay streams
// the campaign through the router — the cluster-wide equivalent of a
// node-local replay.
//
//	telemetryd -role node -node-id n0 -peers n0=http://h0:8355,n1=http://h1:8355
//	telemetryd -role frontend -peers n0=http://h0:8355,n1=http://h1:8355 -addr :8360
//
// Membership is elastic after boot. The frontend serves an admin plane:
//
//	GET  /admin/assignment  the current epoch's table; "status" is
//	                        "active" only once no migration is in flight
//	                        and no partition is suspect
//	POST /admin/join        {"id":"n3","url":"http://h3:8355"} — admit a
//	                        member: minimal-movement rebalance, live
//	                        sketch-page handoff, atomic epoch activation
//	POST /admin/leave       {"id":"n1"} — hand a member's partitions to
//	                        the survivors, then remove it
//	POST /admin/drain       {"id":"n1"} — empty a member without removing
//	                        it (a later leave then moves nothing)
//	POST /admin/settle      retry stale-copy drops left suspect
//
// Each node mounts the matching data-plane legs the migrator drives
// (POST /admin/flush|freeze|unfreeze|absorb|drop|assignment and
// GET /sketches/partition). A frontend given -data persists each activated
// assignment to cluster-state.json there and resumes it on restart, so
// joins and leaves survive a frontend restart without re-flagging -peers.
//
// Usage:
//
//	telemetryd [-addr :8355] [-shards 4] [-window 1m] [-queue 1024]
//	           [-compression 100] [-retain 10000] [-drop]
//	           [-data DIR] [-sync-every 256] [-snapshot-every 4096]
//	           [-replay] [-seed 1] [-scenario NAME|file.json]
//	           [-scale small|paper] [-pprof] [-log-format text|json]
//	           [-role single|node|frontend] [-node-id ID] [-peers LIST]
//	           [-partitions 16] [-replicas 1|2]
//	           [-probe-interval 1s] [-node-timeout 2s]
//
// Logs are structured (log/slog) with stable event names and keys, -log-format
// selects human-readable text (default) or one JSON object per line.
//
// Ingest applies backpressure by default (a full shard queue slows the
// producer); -drop sheds load instead, with every drop counted in
// /healthz. -retain bounds memory on an endless stream by evicting each
// shard's oldest rollup windows past the cap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"edgescope/internal/core"
	"edgescope/internal/obs"
	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
	"edgescope/internal/telemetry/cluster"
)

func main() {
	addr := flag.String("addr", ":8355", "HTTP listen address")
	shards := flag.Int("shards", 4, "ingest shard count")
	queue := flag.Int("queue", 1024, "per-shard bounded queue length")
	window := flag.Duration("window", time.Minute, "rollup window length")
	compression := flag.Float64("compression", 0, "quantile sketch compression (0 = default)")
	retain := flag.Int("retain", 10000, "max rollup windows retained per shard, oldest evicted first (0 = unbounded)")
	drop := flag.Bool("drop", false, "shed load by dropping events when a shard queue is full instead of applying backpressure")
	dataDir := flag.String("data", "", "durable data directory: per-shard WAL + snapshots, recovered on restart (empty = in-memory only)")
	syncEvery := flag.Int("sync-every", 256, "fsync the WAL every N appended records per shard")
	snapEvery := flag.Int("snapshot-every", 4096, "snapshot a shard's rollup state every N folded records (0 = only at shutdown)")
	replay := flag.Bool("replay", false, "stream the deterministic crowd campaign through the pipeline at startup")
	seed := flag.Uint64("seed", 1, "replay seed override (default: the scenario's)")
	scale := flag.String("scale", "small", "legacy replay scale: small or paper (alias for the matching -scenario)")
	scn := flag.String("scenario", "", "replay scenario name from the registry, or path to a JSON spec (overrides -scale)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	role := flag.String("role", "single", "cluster role: single, node, or frontend")
	nodeID := flag.String("node-id", "", "this member's id inside -peers (role node)")
	peers := flag.String("peers", "", "cluster members as comma-separated id=url pairs, canonical order (identical on every daemon)")
	partitions := flag.Int("partitions", cluster.DefaultPartitions, "cluster keyspace partition count (identical on every daemon)")
	replicas := flag.Int("replicas", 1, "replication factor: 1 (owner only) or 2 (owner + failover replica)")
	probeEvery := flag.Duration("probe-interval", time.Second, "frontend health probe period")
	nodeTimeout := flag.Duration("node-timeout", 2*time.Second, "frontend per-node scatter-gather timeout")
	flag.Parse()

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetryd: %v\n", err)
		os.Exit(2)
	}

	// Resolve the cluster member list for the cluster roles. The -peers
	// flag is only the boot layout: a frontend given -data resumes the last
	// assignment it activated instead, and a node's true placement arrives
	// by push when the frontend rebalances.
	var peerIDs []string
	var peerURLs map[string]string
	if *role == "node" || *role == "frontend" {
		ids, urls, err := parsePeers(*peers)
		if err != nil {
			log.Error("bad -peers", "err", err)
			os.Exit(2)
		}
		peerIDs, peerURLs = ids, urls
	}

	switch *role {
	case "frontend":
		runFrontend(frontendOpts{
			addr: *addr, peerIDs: peerIDs, peerURLs: peerURLs,
			partitions: *partitions, replicas: *replicas, dataDir: *dataDir,
			probeEvery: *probeEvery, nodeTimeout: *nodeTimeout,
			replay: *replay, scenario: *scn, scale: *scale, seed: *seed,
			log: log,
		})
		return
	case "single", "node":
	default:
		log.Error("unknown -role", "role", *role, "valid", "single, node, frontend")
		os.Exit(2)
	}

	nodeInfo := &telemetry.NodeInfo{Role: "single"}
	if *role == "node" {
		if *nodeID == "" {
			log.Error("role node needs -node-id")
			os.Exit(2)
		}
		pm, err := cluster.NewMap(cluster.MapConfig{
			Partitions:        *partitions,
			Nodes:             peerIDs,
			ReplicationFactor: *replicas,
		})
		if err != nil {
			log.Error("bad cluster layout", "err", err)
			os.Exit(2)
		}
		if !pm.Current().Member(*nodeID) {
			log.Error("-node-id not in -peers", "node_id", *nodeID, "peers", peerIDs)
			os.Exit(2)
		}
		nodeInfo = pm.NodeInfo(*nodeID)
		if len(nodeInfo.Partitions) == 0 {
			// Not fatal: a freshly booted joiner owns nothing until the
			// frontend's migrator hands partitions over and pushes the
			// activated assignment (POST /admin/assignment).
			log.Info("node owns nothing under the boot layout; awaiting an assignment push", "node_id", *nodeID)
		}
	}
	log.Info("starting", "role", nodeInfo.Role, "node_id", nodeInfo.ID,
		"partitions", nodeInfo.Partitions, "replicates", nodeInfo.Replicates)

	reg := obs.NewRegistry()
	ing, rec, err := telemetry.Open(telemetry.Config{
		Shards:      *shards,
		QueueLen:    *queue,
		Window:      *window,
		Compression: *compression,
		MaxWindows:  *retain,
		Metrics:     reg,
		Node:        nodeInfo,
		// Default to backpressure (a full queue slows the HTTP client) so
		// the dropped counters in /healthz only ever mean real, chosen
		// loss; -drop opts into load shedding instead.
		Block: !*drop,
		WAL: telemetry.WALConfig{
			Dir:           *dataDir,
			SyncEvery:     *syncEvery,
			SnapshotEvery: *snapEvery,
		},
	})
	if err != nil {
		log.Error("recovery failed", "dir", *dataDir, "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		log.Info("recovered",
			"dir", *dataDir,
			"snapshots", rec.Snapshots,
			"segments", rec.SegmentsScanned,
			"records_replayed", rec.RecordsReplayed,
			"records_skipped", rec.RecordsSkipped,
			"torn_tails", rec.TornTails,
			"windows", rec.Windows,
			"duration_ms", rec.DurationMs)
	}
	start := time.Now()

	if *replay {
		suite, err := core.SuiteFromFlags(flag.CommandLine, *scn, *scale, "seed", *seed)
		if err != nil {
			log.Error("replay setup failed", "err", err)
			os.Exit(2)
		}
		log.Info("replay starting", "scenario", suite.Name(), "seed", suite.Seed)
		// Latency streams event-at-a-time through the crowd.StreamLatency
		// emission hook (a thin sink over the one crowd.Observe walk); the
		// rng fork mirrors Suite.LatencyObs, so the streamed observations
		// are the batch substrate's, element for element, for any scenario.
		// Throughput has no streaming hook yet and goes batch.
		st := telemetry.ReplayCampaignLatency(ing, suite.Campaign(),
			rng.New(suite.Seed).Fork("latency"), telemetry.ReplayOptions{})
		thr := telemetry.Replay(ing, telemetry.ThroughputEvents(suite.ThroughputObs(), telemetry.ReplayOptions{}))
		st.Events += thr.Events
		st.Accepted += thr.Accepted
		st.Dropped += thr.Dropped
		if st.Dropped > 0 {
			log.Warn("replay shed events", "dropped", st.Dropped,
				"hint", "use a larger -queue or omit -drop for lossless replay")
		}
		log.Info("replay done", "events", st.Events, "accepted", st.Accepted, "dropped", st.Dropped)
	}

	adminID := ""
	if *role == "node" {
		adminID = *nodeID
	}
	mux := buildMux(muxConfig{ing: ing, reg: reg, pprof: *pprofOn, nodeID: adminID, start: start, log: log})

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting HTTP, drain the
	// shard queues, fsync every WAL and write final snapshots (Close), then
	// exit 0 — so a deliberate restart recovers instantly from the snapshot
	// with zero replay and zero loss.
	if err := serve(*addr, mux, log,
		"addr", *addr, "role", nodeInfo.Role, "shards", *shards, "window", window.String(), "pprof", *pprofOn); err != nil {
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
	if err := ing.Close(); err != nil {
		log.Error("close failed", "err", err)
		os.Exit(1)
	}
	t := ing.TotalStats()
	log.Info("clean shutdown", "accepted", t.Accepted, "processed", t.Processed,
		"dropped", t.Dropped, "windows", t.Windows)
}

// frontendOpts carries the resolved flags into the frontend role.
type frontendOpts struct {
	addr        string
	peerIDs     []string
	peerURLs    map[string]string
	partitions  int
	replicas    int
	dataDir     string
	probeEvery  time.Duration
	nodeTimeout time.Duration
	replay      bool
	scenario    string
	scale       string
	seed        uint64
	log         *slog.Logger
}

// runFrontend stands up the routing + scatter-gather tier and its
// membership plane. With -data the last activated assignment is resumed
// from cluster-state.json (the -peers flag then only supplies URLs for
// members the persisted state doesn't know); without it membership starts
// from the -peers boot layout at epoch 1.
func runFrontend(o frontendOpts) {
	log := o.log
	urls := make(map[string]string, len(o.peerURLs))
	for id, u := range o.peerURLs {
		urls[id] = u
	}
	st, err := loadClusterState(o.dataDir)
	if err != nil {
		log.Error("bad cluster state", "dir", o.dataDir, "err", err)
		os.Exit(1)
	}
	if o.dataDir != "" {
		if err := os.MkdirAll(o.dataDir, 0o755); err != nil {
			log.Error("cluster state dir", "dir", o.dataDir, "err", err)
			os.Exit(1)
		}
	}
	var pm *cluster.PartitionMap
	if st != nil {
		pm, err = cluster.NewMapFromAssignment(st.Assignment)
		if err != nil {
			log.Error("bad persisted assignment", "err", err)
			os.Exit(1)
		}
		for id, u := range st.URLs {
			if u != "" {
				urls[id] = u
			}
		}
		log.Info("resumed cluster state", "file", clusterStateFile,
			"epoch", st.Assignment.Epoch, "nodes", st.Assignment.Nodes)
	} else {
		pm, err = cluster.NewMap(cluster.MapConfig{
			Partitions:        o.partitions,
			Nodes:             o.peerIDs,
			ReplicationFactor: o.replicas,
		})
		if err != nil {
			log.Error("bad cluster layout", "err", err)
			os.Exit(2)
		}
	}
	memberURLs := make(map[string]string, len(pm.Nodes()))
	for _, id := range pm.Nodes() {
		if urls[id] == "" {
			log.Error("peer without url (frontend needs id=url for every member)", "node_id", id)
			os.Exit(2)
		}
		memberURLs[id] = urls[id]
	}
	log.Info("starting", "role", "frontend", "epoch", pm.Epoch(),
		"peers", pm.Nodes(), "partitions", pm.Partitions(),
		"replication_factor", pm.Config().ReplicationFactor)

	reg := obs.NewRegistry()
	peers := newPeerSet(memberURLs, o.nodeTimeout)
	clients := map[string]cluster.NodeClient{}
	admins := map[string]cluster.NodeAdmin{}
	for _, id := range pm.Nodes() {
		n := peers.get(id)
		clients[id] = n
		admins[id] = n
	}
	tracker := cluster.NewHealthTracker(pm.Nodes(), peers.prober(), cluster.HealthConfig{
		Interval: o.probeEvery,
		// ±10% seeded jitter de-synchronizes probe bursts when several
		// frontends share a probe interval.
		Jitter:  rng.New(o.seed).Fork("health-jitter"),
		Metrics: reg,
	})
	// Seed the state machine with one synchronous sweep so the very first
	// routed envelope already sees real membership, then probe on the
	// jittered timer.
	tracker.ProbeOnce()
	tracker.Start()
	defer tracker.Stop()

	router := cluster.NewRouter(pm, tracker, peers.transport(),
		rng.New(o.seed).Fork("router"), cluster.RouterConfig{Metrics: reg})
	front := cluster.NewFrontend(pm, clients, cluster.FrontendConfig{
		Timeout: o.nodeTimeout,
		Metrics: reg,
	})
	spillDir := ""
	if o.dataDir != "" {
		spillDir = filepath.Join(o.dataDir, "handoff-spill")
	}
	mig := cluster.NewMigrator(pm, admins, cluster.MigratorConfig{
		Health:   tracker,
		SpillDir: spillDir,
		OnActivate: func(a cluster.Assignment) {
			if o.dataDir == "" {
				return
			}
			if err := saveClusterState(o.dataDir, clusterState{Assignment: a, URLs: peers.urlsCopy()}); err != nil {
				log.Error("cluster state persist failed", "epoch", a.Epoch, "err", err)
			}
		},
	})
	// A crash mid-rebalance can leave a handoff destination dropped with
	// its replacement cut spilled here; put every such node back to its
	// pre-handoff state before serving (migrations refuse to start over an
	// unrecovered spill).
	if restored, err := mig.RecoverSpills(context.Background()); err != nil {
		log.Error("handoff spill recovery incomplete", "restored", restored, "err", err)
	} else if len(restored) > 0 {
		log.Info("recovered interrupted handoff", "partitions", restored)
	}
	start := time.Now()

	if o.replay {
		suite, err := core.SuiteFromFlags(flag.CommandLine, o.scenario, o.scale, "seed", o.seed)
		if err != nil {
			log.Error("replay setup failed", "err", err)
			os.Exit(2)
		}
		log.Info("replay starting", "scenario", suite.Name(), "seed", suite.Seed, "via", "router")
		st := telemetry.ReplayCampaignLatencyFunc(router.Send, suite.Campaign(),
			rng.New(suite.Seed).Fork("latency"), telemetry.ReplayOptions{})
		thr := telemetry.ReplayFunc(router.Send, telemetry.ThroughputEvents(suite.ThroughputObs(), telemetry.ReplayOptions{}))
		st.Events += thr.Events
		st.Accepted += thr.Accepted
		st.Dropped += thr.Dropped
		if st.Dropped > 0 {
			log.Warn("replay lost events to unreachable partitions", "dropped", st.Dropped,
				"hint", "check node health; refused envelopes must be resent after recovery")
		}
		rst := router.Stats()
		log.Info("replay done", "events", st.Events, "accepted", st.Accepted, "dropped", st.Dropped,
			"routed", rst.Routed, "failed_over", rst.FailedOver)
	}

	mux := buildFrontendMux(frontendMuxConfig{
		pm: pm, router: router, front: front, tracker: tracker,
		admin: &adminPlane{pm: pm, mig: mig, peers: peers, front: front, log: log},
		reg:   reg, start: start, log: log,
	})
	if err := serve(o.addr, mux, log,
		"addr", o.addr, "role", "frontend", "peers", len(pm.Nodes())); err != nil {
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
	log.Info("clean shutdown", "router", router.Stats())
}

// serve runs an HTTP server until SIGINT/SIGTERM (graceful drain, nil
// return) or a listen failure (returned).
func serve(addr string, h http.Handler, log *slog.Logger, fields ...any) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", fields...)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		log.Info("shutdown signal", "action", "draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Error("http shutdown failed", "err", err)
		}
	}
	return nil
}

// parsePeers splits "id=url,id=url" into the ordered id list and the
// id→url map. Order is placement-significant: every daemon must receive
// the identical list. Malformed lists are rejected outright, naming the
// offending peer — a silently deduped or skipped entry would hand two
// daemons different placement arithmetic.
func parsePeers(s string) ([]string, map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, fmt.Errorf("empty -peers (want id=url,id=url,...)")
	}
	var ids []string
	urls := map[string]string{}
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, nil, fmt.Errorf("empty peer entry at position %d", i)
		}
		id, url, found := strings.Cut(part, "=")
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, nil, fmt.Errorf("peer %q has no id", part)
		}
		if _, dup := urls[id]; dup {
			return nil, nil, fmt.Errorf("duplicate peer id %q", id)
		}
		if !found {
			url = "" // node role only needs the ids; the frontend checks urls itself
		}
		ids = append(ids, id)
		urls[id] = strings.TrimSpace(url)
	}
	return ids, urls, nil
}

// newLogger builds the daemon's structured logger: text (human) or json
// (machine), both to stderr with stable event names and keys.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}
