// Command telemetryd serves edgescope's streaming telemetry pipeline over
// HTTP: JSONL events in, windowed quantile-sketch rollups inside, live
// percentile queries out.
//
// Endpoints:
//
//	POST /ingest   JSONL body, one Envelope per line; responds with
//	               {"decoded":N,"malformed":N,"accepted":N,"dropped":N}
//	GET  /query    ?metric=rtt_ms[&region=..][&net=..][&from=RFC3339]
//	               [&to=RFC3339][&q=0.5,0.95,0.99][&cdf=10,50,100]
//	GET  /keys     every queryable dimension tuple with its event count
//	GET  /healthz  liveness ("ok" or "degraded", with reasons), per-shard
//	               ingest + WAL accounting, and the startup recovery report
//	GET  /metrics  Prometheus text exposition: ingest, dedup, shedding, WAL,
//	               recovery and query-latency instrument families
//
// With -pprof the daemon additionally mounts Go's net/http/pprof profiling
// endpoints under /debug/pprof/ (opt-in: CPU profiles and heap dumps are not
// free, so the default surface stays read-only-cheap).
//
// With -data the daemon is durable: accepted events are written to a
// per-shard write-ahead log and periodic snapshots under the directory, and
// a restarted daemon recovers them — answering the same /query results as
// before the restart for everything fsynced (see the README's "Fault model
// & durability"). SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, drain the shard queues, fsync the WAL, write a final snapshot,
// exit 0.
//
// With -replay the daemon first streams a deterministic crowd campaign
// (latency + throughput, internal/crowd) through the pipeline, so a fresh
// process has data to query immediately. The campaign is sized by the
// declarative scenario layer: -scenario accepts any registered name or a
// JSON spec file, and the legacy -scale flag resolves onto the small/paper
// built-ins:
//
//	telemetryd -replay -scenario dense-metro &
//	curl 'localhost:8355/query?metric=rtt_ms&q=0.5,0.95,0.99'
//
// Usage:
//
//	telemetryd [-addr :8355] [-shards 4] [-window 1m] [-queue 1024]
//	           [-compression 100] [-retain 10000] [-drop]
//	           [-data DIR] [-sync-every 256] [-snapshot-every 4096]
//	           [-replay] [-seed 1] [-scenario NAME|file.json]
//	           [-scale small|paper] [-pprof] [-log-format text|json]
//
// Logs are structured (log/slog) with stable event names and keys, -log-format
// selects human-readable text (default) or one JSON object per line.
//
// Ingest applies backpressure by default (a full shard queue slows the
// producer); -drop sheds load instead, with every drop counted in
// /healthz. -retain bounds memory on an endless stream by evicting each
// shard's oldest rollup windows past the cap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgescope/internal/core"
	"edgescope/internal/obs"
	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8355", "HTTP listen address")
	shards := flag.Int("shards", 4, "ingest shard count")
	queue := flag.Int("queue", 1024, "per-shard bounded queue length")
	window := flag.Duration("window", time.Minute, "rollup window length")
	compression := flag.Float64("compression", 0, "quantile sketch compression (0 = default)")
	retain := flag.Int("retain", 10000, "max rollup windows retained per shard, oldest evicted first (0 = unbounded)")
	drop := flag.Bool("drop", false, "shed load by dropping events when a shard queue is full instead of applying backpressure")
	dataDir := flag.String("data", "", "durable data directory: per-shard WAL + snapshots, recovered on restart (empty = in-memory only)")
	syncEvery := flag.Int("sync-every", 256, "fsync the WAL every N appended records per shard")
	snapEvery := flag.Int("snapshot-every", 4096, "snapshot a shard's rollup state every N folded records (0 = only at shutdown)")
	replay := flag.Bool("replay", false, "stream the deterministic crowd campaign through the pipeline at startup")
	seed := flag.Uint64("seed", 1, "replay seed override (default: the scenario's)")
	scale := flag.String("scale", "small", "legacy replay scale: small or paper (alias for the matching -scenario)")
	scn := flag.String("scenario", "", "replay scenario name from the registry, or path to a JSON spec (overrides -scale)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetryd: %v\n", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	ing, rec, err := telemetry.Open(telemetry.Config{
		Shards:      *shards,
		QueueLen:    *queue,
		Window:      *window,
		Compression: *compression,
		MaxWindows:  *retain,
		Metrics:     reg,
		// Default to backpressure (a full queue slows the HTTP client) so
		// the dropped counters in /healthz only ever mean real, chosen
		// loss; -drop opts into load shedding instead.
		Block: !*drop,
		WAL: telemetry.WALConfig{
			Dir:           *dataDir,
			SyncEvery:     *syncEvery,
			SnapshotEvery: *snapEvery,
		},
	})
	if err != nil {
		log.Error("recovery failed", "dir", *dataDir, "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		log.Info("recovered",
			"dir", *dataDir,
			"snapshots", rec.Snapshots,
			"segments", rec.SegmentsScanned,
			"records_replayed", rec.RecordsReplayed,
			"records_skipped", rec.RecordsSkipped,
			"torn_tails", rec.TornTails,
			"windows", rec.Windows,
			"duration_ms", rec.DurationMs)
	}
	start := time.Now()

	if *replay {
		suite, err := core.SuiteFromFlags(flag.CommandLine, *scn, *scale, "seed", *seed)
		if err != nil {
			log.Error("replay setup failed", "err", err)
			os.Exit(2)
		}
		log.Info("replay starting", "scenario", suite.Name(), "seed", suite.Seed)
		// Latency streams event-at-a-time through the crowd.StreamLatency
		// emission hook (a thin sink over the one crowd.Observe walk); the
		// rng fork mirrors Suite.LatencyObs, so the streamed observations
		// are the batch substrate's, element for element, for any scenario.
		// Throughput has no streaming hook yet and goes batch.
		st := telemetry.ReplayCampaignLatency(ing, suite.Campaign(),
			rng.New(suite.Seed).Fork("latency"), telemetry.ReplayOptions{})
		thr := telemetry.Replay(ing, telemetry.ThroughputEvents(suite.ThroughputObs(), telemetry.ReplayOptions{}))
		st.Events += thr.Events
		st.Accepted += thr.Accepted
		st.Dropped += thr.Dropped
		if st.Dropped > 0 {
			log.Warn("replay shed events", "dropped", st.Dropped,
				"hint", "use a larger -queue or omit -drop for lossless replay")
		}
		log.Info("replay done", "events", st.Events, "accepted", st.Accepted, "dropped", st.Dropped)
	}

	mux := buildMux(muxConfig{ing: ing, reg: reg, pprof: *pprofOn, start: start, log: log})

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting HTTP, drain the
	// shard queues, fsync every WAL and write final snapshots (Close), then
	// exit 0 — so a deliberate restart recovers instantly from the snapshot
	// with zero replay and zero loss.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "shards", *shards, "window", window.String(), "pprof", *pprofOn)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("shutdown signal", "action", "draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Error("http shutdown failed", "err", err)
		}
	}
	if err := ing.Close(); err != nil {
		log.Error("close failed", "err", err)
		os.Exit(1)
	}
	t := ing.TotalStats()
	log.Info("clean shutdown", "accepted", t.Accepted, "processed", t.Processed,
		"dropped", t.Dropped, "windows", t.Windows)
}

// newLogger builds the daemon's structured logger: text (human) or json
// (machine), both to stderr with stable event names and keys.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
}
