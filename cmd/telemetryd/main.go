// Command telemetryd serves edgescope's streaming telemetry pipeline over
// HTTP: JSONL events in, windowed quantile-sketch rollups inside, live
// percentile queries out.
//
// Endpoints:
//
//	POST /ingest   JSONL body, one Envelope per line; responds with
//	               {"decoded":N,"malformed":N,"accepted":N,"dropped":N}
//	GET  /query    ?metric=rtt_ms[&region=..][&net=..][&from=RFC3339]
//	               [&to=RFC3339][&q=0.5,0.95,0.99][&cdf=10,50,100]
//	GET  /keys     every queryable dimension tuple with its event count
//	GET  /healthz  liveness ("ok" or "degraded", with reasons), per-shard
//	               ingest + WAL accounting, and the startup recovery report
//
// With -data the daemon is durable: accepted events are written to a
// per-shard write-ahead log and periodic snapshots under the directory, and
// a restarted daemon recovers them — answering the same /query results as
// before the restart for everything fsynced (see the README's "Fault model
// & durability"). SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, drain the shard queues, fsync the WAL, write a final snapshot,
// exit 0.
//
// With -replay the daemon first streams a deterministic crowd campaign
// (latency + throughput, internal/crowd) through the pipeline, so a fresh
// process has data to query immediately. The campaign is sized by the
// declarative scenario layer: -scenario accepts any registered name or a
// JSON spec file, and the legacy -scale flag resolves onto the small/paper
// built-ins:
//
//	telemetryd -replay -scenario dense-metro &
//	curl 'localhost:8355/query?metric=rtt_ms&q=0.5,0.95,0.99'
//
// Usage:
//
//	telemetryd [-addr :8355] [-shards 4] [-window 1m] [-queue 1024]
//	           [-compression 100] [-retain 10000] [-drop]
//	           [-data DIR] [-sync-every 256] [-snapshot-every 4096]
//	           [-replay] [-seed 1] [-scenario NAME|file.json]
//	           [-scale small|paper]
//
// Ingest applies backpressure by default (a full shard queue slows the
// producer); -drop sheds load instead, with every drop counted in
// /healthz. -retain bounds memory on an endless stream by evicting each
// shard's oldest rollup windows past the cap.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"edgescope/internal/core"
	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8355", "HTTP listen address")
	shards := flag.Int("shards", 4, "ingest shard count")
	queue := flag.Int("queue", 1024, "per-shard bounded queue length")
	window := flag.Duration("window", time.Minute, "rollup window length")
	compression := flag.Float64("compression", 0, "quantile sketch compression (0 = default)")
	retain := flag.Int("retain", 10000, "max rollup windows retained per shard, oldest evicted first (0 = unbounded)")
	drop := flag.Bool("drop", false, "shed load by dropping events when a shard queue is full instead of applying backpressure")
	dataDir := flag.String("data", "", "durable data directory: per-shard WAL + snapshots, recovered on restart (empty = in-memory only)")
	syncEvery := flag.Int("sync-every", 256, "fsync the WAL every N appended records per shard")
	snapEvery := flag.Int("snapshot-every", 4096, "snapshot a shard's rollup state every N folded records (0 = only at shutdown)")
	replay := flag.Bool("replay", false, "stream the deterministic crowd campaign through the pipeline at startup")
	seed := flag.Uint64("seed", 1, "replay seed override (default: the scenario's)")
	scale := flag.String("scale", "small", "legacy replay scale: small or paper (alias for the matching -scenario)")
	scn := flag.String("scenario", "", "replay scenario name from the registry, or path to a JSON spec (overrides -scale)")
	flag.Parse()

	ing, rec, err := telemetry.Open(telemetry.Config{
		Shards:      *shards,
		QueueLen:    *queue,
		Window:      *window,
		Compression: *compression,
		MaxWindows:  *retain,
		// Default to backpressure (a full queue slows the HTTP client) so
		// the dropped counters in /healthz only ever mean real, chosen
		// loss; -drop opts into load shedding instead.
		Block: !*drop,
		WAL: telemetry.WALConfig{
			Dir:           *dataDir,
			SyncEvery:     *syncEvery,
			SnapshotEvery: *snapEvery,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetryd: recover %s: %v\n", *dataDir, err)
		os.Exit(1)
	}
	if *dataDir != "" {
		log.Printf("recovered %s: %d snapshots, %d segments, %d records replayed (+%d from snapshots), %d torn tails, %d rollup windows, %dms",
			*dataDir, rec.Snapshots, rec.SegmentsScanned, rec.RecordsReplayed, rec.RecordsSkipped,
			rec.TornTails, rec.Windows, rec.DurationMs)
	}
	start := time.Now()

	if *replay {
		suite, err := core.SuiteFromFlags(flag.CommandLine, *scn, *scale, "seed", *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetryd: %v\n", err)
			os.Exit(2)
		}
		log.Printf("replaying crowd campaign (scenario=%s seed=%d)...", suite.Name(), suite.Seed)
		// Latency streams event-at-a-time through the crowd.StreamLatency
		// emission hook (a thin sink over the one crowd.Observe walk); the
		// rng fork mirrors Suite.LatencyObs, so the streamed observations
		// are the batch substrate's, element for element, for any scenario.
		// Throughput has no streaming hook yet and goes batch.
		st := telemetry.ReplayCampaignLatency(ing, suite.Campaign(),
			rng.New(suite.Seed).Fork("latency"), telemetry.ReplayOptions{})
		thr := telemetry.Replay(ing, telemetry.ThroughputEvents(suite.ThroughputObs(), telemetry.ReplayOptions{}))
		st.Events += thr.Events
		st.Accepted += thr.Accepted
		st.Dropped += thr.Dropped
		if st.Dropped > 0 {
			log.Printf("replay dropped %d events (use a larger -queue or omit -drop for lossless replay)", st.Dropped)
		}
		log.Printf("replay done: %+v", st)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		accepted := 0
		st, err := telemetry.ReadJSONL(r.Body, func(e telemetry.Envelope) {
			if ing.Offer(e) {
				accepted++
			}
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]int{
			"decoded":   st.Decoded,
			"malformed": st.Malformed,
			"accepted":  accepted,
			"dropped":   st.Decoded - accepted,
		})
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromURL(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := ing.Query(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("GET /keys", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ing.Keys())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := ing.Health()
		writeJSON(w, map[string]any{
			"status":         h.Status,
			"reasons":        h.Reasons,
			"durable":        h.Durable,
			"uptime_seconds": int(time.Since(start).Seconds()),
			"shards":         h.Shards,
			"total":          h.Total,
			"recovery":       h.Recovery,
		})
	})

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting HTTP, drain the
	// shard queues, fsync every WAL and write final snapshots (Close), then
	// exit 0 — so a deliberate restart recovers instantly from the snapshot
	// with zero replay and zero loss.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		log.Printf("telemetryd listening on %s (%d shards, %v windows)", *addr, *shards, *window)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutdown signal: draining...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}
	if err := ing.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	log.Printf("telemetryd: clean shutdown: %s", ing)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("telemetryd: write response: %v", err)
	}
}

// specFromURL parses /query parameters into a QuerySpec.
func specFromURL(r *http.Request) (telemetry.QuerySpec, error) {
	q := r.URL.Query()
	spec := telemetry.QuerySpec{
		Metric: q.Get("metric"),
		Region: q.Get("region"),
		Net:    q.Get("net"),
	}
	var err error
	if spec.Quantiles, err = parseFloats(q.Get("q")); err != nil {
		return spec, fmt.Errorf("bad q: %w", err)
	}
	if spec.CDFAt, err = parseFloats(q.Get("cdf")); err != nil {
		return spec, fmt.Errorf("bad cdf: %w", err)
	}
	if v := q.Get("from"); v != "" {
		if spec.From, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("bad from: %w", err)
		}
	}
	if v := q.Get("to"); v != "" {
		if spec.To, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("bad to: %w", err)
		}
	}
	return spec, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
