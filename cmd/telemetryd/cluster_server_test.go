package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
	"edgescope/internal/telemetry/cluster"
)

// clusterServers is a 3-node cluster + frontend, every tier on the real
// production mux over httptest.
type clusterServers struct {
	pm      *cluster.PartitionMap
	ings    map[string]*telemetry.Ingestor
	servers map[string]*httptest.Server
	tracker *cluster.HealthTracker
	front   *httptest.Server
}

func newClusterServers(t *testing.T) *clusterServers {
	t.Helper()
	pm, err := cluster.NewMap(cluster.MapConfig{
		Partitions: 8, Nodes: []string{"n0", "n1", "n2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &clusterServers{pm: pm, ings: map[string]*telemetry.Ingestor{}, servers: map[string]*httptest.Server{}}
	httpNodes := map[string]*cluster.HTTPNode{}
	clients := map[string]cluster.NodeClient{}
	for _, id := range pm.Nodes() {
		ing := telemetry.NewIngestor(telemetry.Config{Shards: 2, QueueLen: 256, Block: true, Node: pm.NodeInfo(id)})
		t.Cleanup(func() { ing.Close() })
		srv := httptest.NewServer(buildMux(muxConfig{ing: ing, start: time.Now()}))
		t.Cleanup(srv.Close)
		c.ings[id] = ing
		c.servers[id] = srv
		n := cluster.NewHTTPNode(srv.URL, &http.Client{Timeout: time.Second})
		httpNodes[id] = n
		clients[id] = n
	}
	c.tracker = cluster.NewHealthTracker(pm.Nodes(), cluster.HTTPProber(httpNodes), cluster.HealthConfig{DownAfter: 3})
	router := cluster.NewRouter(pm, c.tracker, cluster.HTTPTransport(httpNodes), rng.New(1), cluster.RouterConfig{
		Retry: telemetry.RetryConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	})
	front := cluster.NewFrontend(pm, clients, cluster.FrontendConfig{Timeout: time.Second})
	c.front = httptest.NewServer(buildFrontendMux(frontendMuxConfig{
		pm: pm, router: router, front: front, tracker: c.tracker, start: time.Now(),
	}))
	t.Cleanup(c.front.Close)
	return c
}

// ingestLines builds a deterministic JSONL body spanning several keys.
func ingestLines(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for i, region := range []string{"Beijing", "Shanghai", "Shenzhen", "Chengdu"} {
		for j, net := range []string{"WiFi", "5G"} {
			for k := 0; k < 4; k++ {
				fmt.Fprintf(&sb, `{"v":1,"ts":%d,"metric":"rtt_ms","user":%d,"region":"%s","net":"%s","value":%d}`+"\n",
					1700000000000+int64(k)*500, i+1, region, net, 10+i*5+j*2+k)
			}
		}
	}
	return sb.String()
}

func postIngest(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Dropped != 0 {
		t.Fatalf("ingest dropped %d", ack.Dropped)
	}
	return ack.Accepted
}

// TestClusterFrontendMatchesSingleNode: the same JSONL stream pushed
// through the frontend router and through one single-node daemon answers
// /query and /keys byte-identically over HTTP.
func TestClusterFrontendMatchesSingleNode(t *testing.T) {
	c := newClusterServers(t)
	body := ingestLines(t)
	if got := postIngest(t, c.front.URL, body); got != 32 {
		t.Fatalf("frontend accepted %d of 32", got)
	}
	for _, ing := range c.ings {
		ing.Flush()
	}

	single, _, singleSrv := newTestServer(t, telemetry.Config{Shards: 4, Block: true}, false)
	if got := postIngest(t, singleSrv.URL, body); got != 32 {
		t.Fatalf("single accepted %d of 32", got)
	}
	single.Flush()

	const q = "/query?metric=rtt_ms&q=0.5,0.95,0.99&cdf=10,20,40"
	codeC, bodyC, _ := get(t, c.front.URL+q)
	codeS, bodyS, _ := get(t, singleSrv.URL+q)
	if codeC != http.StatusOK || codeS != http.StatusOK {
		t.Fatalf("query status: cluster=%d single=%d", codeC, codeS)
	}
	if bodyC != bodyS {
		t.Fatalf("cluster /query differs from single-node:\n%s\n%s", bodyC, bodyS)
	}

	codeC, keysC, _ := get(t, c.front.URL+"/keys")
	codeS, keysS, _ := get(t, singleSrv.URL+"/keys")
	if codeC != http.StatusOK || codeS != http.StatusOK {
		t.Fatalf("keys status: cluster=%d single=%d", codeC, codeS)
	}
	if keysC != keysS {
		t.Fatalf("cluster /keys differs from single-node:\n%s\n%s", keysC, keysS)
	}
}

// TestClusterFrontendPartialOverHTTP: a dead member surfaces in /query as
// partial + missing partitions, and /keys answers 206 with the missing
// node named — explicit partiality, never silent gaps.
func TestClusterFrontendPartialOverHTTP(t *testing.T) {
	c := newClusterServers(t)
	if got := postIngest(t, c.front.URL, ingestLines(t)); got != 32 {
		t.Fatalf("accepted %d of 32", got)
	}
	for _, ing := range c.ings {
		ing.Flush()
	}

	c.servers["n1"].Close()
	for i := 0; i < 3; i++ {
		c.tracker.ProbeOnce()
	}

	code, body, _ := get(t, c.front.URL+"/query?metric=rtt_ms")
	if code != http.StatusOK {
		t.Fatalf("partial query status = %d", code)
	}
	var res struct {
		Count             float64  `json:"count"`
		Partial           bool     `json:"partial"`
		MissingPartitions []int    `json:"missing_partitions"`
		MissingNodes      []string `json:"missing_nodes"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatalf("dead member not flagged partial: %s", body)
	}
	if !reflect.DeepEqual(res.MissingNodes, []string{"n1"}) {
		t.Fatalf("missing nodes = %v", res.MissingNodes)
	}
	if !reflect.DeepEqual(res.MissingPartitions, c.pm.OwnedBy("n1")) {
		t.Fatalf("missing partitions = %v, n1 owns %v", res.MissingPartitions, c.pm.OwnedBy("n1"))
	}
	if res.Count == 0 {
		t.Fatal("partial answer lost surviving data")
	}

	code, _, hdr := get(t, c.front.URL+"/keys")
	if code != http.StatusPartialContent {
		t.Fatalf("partial /keys status = %d, want 206", code)
	}
	if got := hdr.Get("X-Missing-Nodes"); got != "n1" {
		t.Fatalf("X-Missing-Nodes = %q", got)
	}

	code, body, _ = get(t, c.front.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	var h struct {
		Status string `json:"status"`
		Nodes  []struct {
			Node  string `json:"node"`
			State string `json:"state"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("cluster healthz status = %s with a dead member", h.Status)
	}
	states := map[string]string{}
	for _, n := range h.Nodes {
		states[n.Node] = n.State
	}
	if states["n1"] != "down" || states["n0"] != "up" {
		t.Fatalf("member states = %v", states)
	}
}

// TestNodeHealthzSelfDescribes: a cluster node's /healthz names its role
// and partition assignment.
func TestNodeHealthzSelfDescribes(t *testing.T) {
	c := newClusterServers(t)
	code, body, _ := get(t, c.servers["n2"].URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var h struct {
		Node *telemetry.NodeInfo `json:"node"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Node == nil || h.Node.Role != "node" || h.Node.ID != "n2" {
		t.Fatalf("healthz node = %+v", h.Node)
	}
	if !reflect.DeepEqual(h.Node.Partitions, c.pm.OwnedBy("n2")) {
		t.Fatalf("healthz partitions = %v, want %v", h.Node.Partitions, c.pm.OwnedBy("n2"))
	}
}

// TestSketchesEndpoint: /sketches serves the wire-form rollups the
// front-end merges, and validates specs like /query does.
func TestSketchesEndpoint(t *testing.T) {
	_, _, srv := newTestServer(t, telemetry.Config{Shards: 2, Block: true}, false)
	if got := postIngest(t, srv.URL, ingestLines(t)); got != 32 {
		t.Fatalf("accepted %d", got)
	}

	code, body, _ := get(t, srv.URL+"/sketches?metric=rtt_ms")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var page telemetry.SketchPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Metric != "rtt_ms" || len(page.Matches) == 0 || page.Compression == 0 {
		t.Fatalf("page = metric=%q matches=%d compression=%v", page.Metric, len(page.Matches), page.Compression)
	}

	if code, _, _ := get(t, srv.URL+"/sketches"); code != http.StatusBadRequest {
		t.Fatalf("metric-less /sketches status = %d, want 400", code)
	}
}

func TestParsePeers(t *testing.T) {
	ids, urls, err := parsePeers("n0=http://a:1, n1=http://b:2 ,n2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"n0", "n1", "n2"}) {
		t.Fatalf("ids = %v (order is placement-significant)", ids)
	}
	if urls["n0"] != "http://a:1" || urls["n1"] != "http://b:2" || urls["n2"] != "" {
		t.Fatalf("urls = %v", urls)
	}
	if _, _, err := parsePeers(""); err == nil {
		t.Fatal("empty peers accepted")
	}
	if _, _, err := parsePeers("=http://x"); err == nil {
		t.Fatal("id-less peer accepted")
	}
}

// TestParsePeersStrict: duplicate and empty entries are rejected with the
// offending peer named — a silently deduped list would hand daemons
// different placement arithmetic.
func TestParsePeersStrict(t *testing.T) {
	if _, _, err := parsePeers("n0=http://a,n1=http://b,n0=http://c"); err == nil || !strings.Contains(err.Error(), `"n0"`) {
		t.Fatalf("duplicate peer: err = %v, want it to name n0", err)
	}
	if _, _, err := parsePeers("n0=http://a,,n1=http://b"); err == nil || !strings.Contains(err.Error(), "position 1") {
		t.Fatalf("empty entry: err = %v, want it to name position 1", err)
	}
	if _, _, err := parsePeers("n0=http://a,n1=http://b,"); err == nil {
		t.Fatal("trailing comma accepted")
	}
}
