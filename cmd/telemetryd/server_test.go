package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/telemetry"
)

func newTestServer(t *testing.T, cfg telemetry.Config, pprofOn bool) (*telemetry.Ingestor, *obs.Registry, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	ing, _, err := telemetry.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv := httptest.NewServer(buildMux(muxConfig{ing: ing, reg: reg, pprof: pprofOn, start: time.Now()}))
	t.Cleanup(srv.Close)
	return ing, reg, srv
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthzOK(t *testing.T) {
	_, _, srv := newTestServer(t, telemetry.Config{Shards: 1, Block: true}, false)
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var h struct {
		Status  string `json:"status"`
		Durable bool   `json:"durable"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Durable {
		t.Fatalf("healthz = %+v, want ok and non-durable", h)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestHealthzDegraded(t *testing.T) {
	ing, _, srv := newTestServer(t, telemetry.Config{
		Shards: 1,
		Block:  true,
		WAL: telemetry.WALConfig{
			Dir:        t.TempDir(),
			SyncEvery:  1,
			WrapWriter: func(int, io.Writer) io.Writer { return failingWriter{} },
		},
	}, false)
	e := telemetry.Envelope{V: telemetry.SchemaVersion, TS: time.Now().UnixMilli(),
		Metric: telemetry.MetricRTT, Region: "Beijing", Net: "WiFi", Value: 12}
	if !ing.Offer(e) {
		t.Fatal("offer refused")
	}
	ing.Flush()
	ing.SyncWAL()
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var h struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Fatalf("healthz = %+v, want degraded with reasons", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, srv := newTestServer(t, telemetry.Config{Shards: 2, Block: true}, false)

	code, before, hdr := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("content-type = %q, want %q", ct, obs.ExpositionContentType)
	}
	if err := obs.LintExposition(strings.NewReader(before)); err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}
	if !strings.Contains(before, "telemetry_ingest_accepted_total") {
		t.Fatal("exposition missing the ingest family")
	}

	// Counters move after an ingest through the HTTP surface.
	line := `{"v":1,"ts":1633046400000,"metric":"rtt_ms","region":"Beijing","net":"WiFi","value":34.5}` + "\n"
	resp, err := http.Post(srv.URL+"/ingest", "application/jsonl", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Accepted != 1 {
		t.Fatalf("ingest accepted = %d, want 1", ack.Accepted)
	}

	_, after, _ := get(t, srv.URL+"/metrics")
	if err := obs.LintExposition(strings.NewReader(after)); err != nil {
		t.Fatalf("post-ingest exposition malformed: %v", err)
	}
	sum := func(text, family string) float64 {
		var total float64
		for _, l := range strings.Split(text, "\n") {
			if !strings.HasPrefix(l, family) {
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(l[strings.LastIndex(l, " ")+1:], "%g", &v); err == nil {
				total += v
			}
		}
		return total
	}
	b, a := sum(before, "telemetry_ingest_accepted_total"), sum(after, "telemetry_ingest_accepted_total")
	if a != b+1 {
		t.Fatalf("accepted counter %v -> %v, want +1", b, a)
	}
}

func TestPprofWiring(t *testing.T) {
	_, _, on := newTestServer(t, telemetry.Config{Shards: 1, Block: true}, true)
	code, body, _ := get(t, on.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index with -pprof: status=%d", code)
	}
	if code, _, _ := get(t, on.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline with -pprof: status=%d", code)
	}

	_, _, off := newTestServer(t, telemetry.Config{Shards: 1, Block: true}, false)
	if code, _, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status=%d, want 404", code)
	}
}

func TestLogFormatFlag(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
}
