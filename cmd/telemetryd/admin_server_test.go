package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
	"edgescope/internal/telemetry/cluster"
)

// elasticServers is a full elastic cluster over httptest: nodes on the
// production mux with the admin plane mounted, and a frontend wired
// exactly as runFrontend wires it — live peerSet, migrator, admin
// endpoints — so join/leave/drain run the same code paths the daemon does.
type elasticServers struct {
	pm      *cluster.PartitionMap
	peers   *peerSet
	mig     *cluster.Migrator
	tracker *cluster.HealthTracker
	ings    map[string]*telemetry.Ingestor
	servers map[string]*httptest.Server
	front   *httptest.Server
}

// addNodeServer boots one node daemon (ingestor + production mux with the
// admin plane) and returns its URL. The node self-describes as owning
// nothing until an assignment push tells it otherwise — exactly how a
// joining daemon boots.
func (c *elasticServers) addNodeServer(t *testing.T, id string) string {
	t.Helper()
	ing := telemetry.NewIngestor(telemetry.Config{
		Shards: 2, QueueLen: 256, Block: true,
		Node: &telemetry.NodeInfo{Role: "node", ID: id},
	})
	t.Cleanup(func() { ing.Close() })
	srv := httptest.NewServer(buildMux(muxConfig{ing: ing, nodeID: id, start: time.Now()}))
	t.Cleanup(srv.Close)
	c.ings[id] = ing
	c.servers[id] = srv
	return srv.URL
}

func newElasticServers(t *testing.T, dataDir string) *elasticServers {
	t.Helper()
	pm, err := cluster.NewMap(cluster.MapConfig{
		Partitions: 8, Nodes: []string{"n0", "n1", "n2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &elasticServers{pm: pm, ings: map[string]*telemetry.Ingestor{}, servers: map[string]*httptest.Server{}}
	urls := map[string]string{}
	for _, id := range pm.Nodes() {
		urls[id] = c.addNodeServer(t, id)
	}
	c.peers = newPeerSet(urls, time.Second)
	clients := map[string]cluster.NodeClient{}
	admins := map[string]cluster.NodeAdmin{}
	for _, id := range pm.Nodes() {
		n := c.peers.get(id)
		clients[id] = n
		admins[id] = n
	}
	c.tracker = cluster.NewHealthTracker(pm.Nodes(), c.peers.prober(), cluster.HealthConfig{DownAfter: 3})
	router := cluster.NewRouter(pm, c.tracker, c.peers.transport(), rng.New(1), cluster.RouterConfig{
		Retry: telemetry.RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	})
	front := cluster.NewFrontend(pm, clients, cluster.FrontendConfig{Timeout: time.Second})
	c.mig = cluster.NewMigrator(pm, admins, cluster.MigratorConfig{
		Health: c.tracker,
		OnActivate: func(a cluster.Assignment) {
			if dataDir == "" {
				return
			}
			if err := saveClusterState(dataDir, clusterState{Assignment: a, URLs: c.peers.urlsCopy()}); err != nil {
				t.Errorf("persist: %v", err)
			}
		},
	})
	c.front = httptest.NewServer(buildFrontendMux(frontendMuxConfig{
		pm: pm, router: router, front: front, tracker: c.tracker,
		admin: &adminPlane{pm: pm, mig: c.mig, peers: c.peers, front: front},
		start: time.Now(),
	}))
	t.Cleanup(c.front.Close)
	return c
}

// flushAll settles every node through the HTTP admin leg.
func (c *elasticServers) flushAll(t *testing.T) {
	t.Helper()
	for id, srv := range c.servers {
		if code, body := postJSONBody(t, srv.URL+"/admin/flush", nil); code != http.StatusOK {
			t.Fatalf("flush %s: %d %s", id, code, body)
		}
	}
}

func postJSONBody(t *testing.T, url string, body any) (int, string) {
	t.Helper()
	var rdr *bytes.Reader
	if body == nil {
		rdr = bytes.NewReader(nil)
	} else {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(raw)
	}
	resp, err := http.Post(url, "application/json", rdr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// assignmentStatus polls GET /admin/assignment.
func assignmentStatus(t *testing.T, frontURL string) (status string, epoch uint64, migrating []int) {
	t.Helper()
	code, body, _ := get(t, frontURL+"/admin/assignment")
	if code != http.StatusOK {
		t.Fatalf("/admin/assignment: %d %s", code, body)
	}
	var res struct {
		Status    string `json:"status"`
		Epoch     uint64 `json:"epoch"`
		Migrating []int  `json:"migrating"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	return res.Status, res.Epoch, res.Migrating
}

// TestAdminJoinDrainLeaveOverHTTP drives the full elastic lifecycle
// through the daemon's HTTP surface: a join mid-stream hands partitions to
// the new node, a drain empties a member, a leave removes it — and after
// every epoch the frontend's /query and /keys stay byte-identical to one
// single-node daemon that ingested the whole stream. No daemon restarts.
func TestAdminJoinDrainLeaveOverHTTP(t *testing.T) {
	c := newElasticServers(t, "")
	lines := strings.SplitAfter(strings.TrimSuffix(ingestLines(t), "\n"), "\n")
	half := len(lines) / 2
	first, second := strings.Join(lines[:half], ""), strings.Join(lines[half:], "")

	if got := postIngest(t, c.front.URL, first); got != half {
		t.Fatalf("accepted %d of %d", got, half)
	}
	c.flushAll(t)

	// Join a fourth node while the cluster holds data: its quota must
	// arrive as sketch pages, and the epoch must activate atomically.
	n3url := c.addNodeServer(t, "n3")
	code, body := postJSONBody(t, c.front.URL+"/admin/join", memberReq{ID: "n3", URL: n3url})
	if code != http.StatusOK {
		t.Fatalf("join: %d %s", code, body)
	}
	var joined cluster.Assignment
	if err := json.Unmarshal([]byte(body), &joined); err != nil {
		t.Fatal(err)
	}
	if joined.Epoch != 2 {
		t.Fatalf("join epoch = %d, want 2", joined.Epoch)
	}
	owns := 0
	for _, o := range joined.Owners {
		if o == "n3" {
			owns++
		}
	}
	if owns != 2 { // 8 partitions / 4 nodes
		t.Fatalf("n3 owns %d partitions, want 2", owns)
	}
	if status, epoch, migrating := assignmentStatus(t, c.front.URL); status != "active" || epoch != 2 || len(migrating) != 0 {
		t.Fatalf("post-join assignment: status=%s epoch=%d migrating=%v", status, epoch, migrating)
	}
	// The pushed assignment reached the joiner: its /healthz self-describes
	// the partitions it now owns.
	code, body, _ = func() (int, string, http.Header) { return get(t, n3url+"/healthz") }()
	if code != http.StatusOK {
		t.Fatalf("n3 healthz: %d", code)
	}
	var h struct {
		Node *telemetry.NodeInfo `json:"node"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Node == nil || len(h.Node.Partitions) != 2 {
		t.Fatalf("n3 self-description after push: %+v", h.Node)
	}

	// A duplicate join must refuse without touching the live member.
	if code, _ := postJSONBody(t, c.front.URL+"/admin/join", memberReq{ID: "n3", URL: n3url}); code != http.StatusConflict {
		t.Fatalf("duplicate join: %d, want 409", code)
	}

	// The rest of the stream rides the new epoch.
	if got := postIngest(t, c.front.URL, second); got != len(lines)-half {
		t.Fatalf("accepted %d of %d", got, len(lines)-half)
	}
	c.flushAll(t)

	single, _, singleSrv := newTestServer(t, telemetry.Config{Shards: 4, Block: true}, false)
	if got := postIngest(t, singleSrv.URL, first+second); got != len(lines) {
		t.Fatalf("single accepted %d", got)
	}
	single.Flush()

	const q = "/query?metric=rtt_ms&q=0.5,0.95,0.99&cdf=10,20,40"
	compare := func(stage string) {
		t.Helper()
		_, bodyC, _ := get(t, c.front.URL+q)
		_, bodyS, _ := get(t, singleSrv.URL+q)
		if bodyC != bodyS {
			t.Fatalf("%s: cluster /query differs from single-node:\n%s\n%s", stage, bodyC, bodyS)
		}
		codeK, keysC, _ := get(t, c.front.URL+"/keys")
		_, keysS, _ := get(t, singleSrv.URL+"/keys")
		if codeK != http.StatusOK || keysC != keysS {
			t.Fatalf("%s: cluster /keys differs (status %d):\n%s\n%s", stage, codeK, keysC, keysS)
		}
	}
	compare("post-join")

	// Drain n1 (it stays a member, owning nothing), then leave — which
	// moves nothing further. Identity must hold at each epoch.
	code, body = postJSONBody(t, c.front.URL+"/admin/drain", memberReq{ID: "n1"})
	if code != http.StatusOK {
		t.Fatalf("drain: %d %s", code, body)
	}
	var drained cluster.Assignment
	if err := json.Unmarshal([]byte(body), &drained); err != nil {
		t.Fatal(err)
	}
	if drained.Epoch != 3 {
		t.Fatalf("drain epoch = %d", drained.Epoch)
	}
	for p, o := range drained.Owners {
		if o == "n1" {
			t.Fatalf("partition %d still on drained n1", p)
		}
	}
	compare("post-drain")

	code, body = postJSONBody(t, c.front.URL+"/admin/leave", memberReq{ID: "n1"})
	if code != http.StatusOK {
		t.Fatalf("leave: %d %s", code, body)
	}
	var left cluster.Assignment
	if err := json.Unmarshal([]byte(body), &left); err != nil {
		t.Fatal(err)
	}
	if left.Epoch != 4 || left.Member("n1") {
		t.Fatalf("leave: epoch=%d members=%v", left.Epoch, left.Nodes)
	}
	compare("post-leave")

	// The departed node is unwired: leaving again refuses.
	if code, _ := postJSONBody(t, c.front.URL+"/admin/leave", memberReq{ID: "n1"}); code != http.StatusConflict {
		t.Fatalf("double leave: %d, want 409", code)
	}
}

// TestAdminStatePersistence: each activated epoch lands in
// cluster-state.json with the member URLs, and the persisted table
// rebuilds a partition map at the activated epoch — what a frontend
// restart resumes from.
func TestAdminStatePersistence(t *testing.T) {
	dir := t.TempDir()
	c := newElasticServers(t, dir)
	n3url := c.addNodeServer(t, "n3")
	if code, body := postJSONBody(t, c.front.URL+"/admin/join", memberReq{ID: "n3", URL: n3url}); code != http.StatusOK {
		t.Fatalf("join: %d %s", code, body)
	}

	st, err := loadClusterState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no cluster state persisted")
	}
	if st.Assignment.Epoch != 2 || !st.Assignment.Member("n3") {
		t.Fatalf("persisted assignment: epoch=%d nodes=%v", st.Assignment.Epoch, st.Assignment.Nodes)
	}
	if st.URLs["n3"] != n3url {
		t.Fatalf("persisted urls missing the joiner: %v", st.URLs)
	}
	pm2, err := cluster.NewMapFromAssignment(st.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if pm2.Epoch() != 2 || !reflect.DeepEqual(pm2.Nodes(), st.Assignment.Nodes) {
		t.Fatalf("resumed map: epoch=%d nodes=%v", pm2.Epoch(), pm2.Nodes())
	}

	// Corrupt state must refuse loudly, not resume garbage placement.
	if err := os.WriteFile(filepath.Join(dir, clusterStateFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadClusterState(dir); err == nil {
		t.Fatal("corrupt cluster-state.json loaded")
	}
	// An absent file is a clean first boot.
	if st, err := loadClusterState(t.TempDir()); err != nil || st != nil {
		t.Fatalf("fresh dir: st=%v err=%v", st, err)
	}
}

// TestNodeAdminHTTPRoundTrip exercises the node-side admin legs directly:
// freeze refuses ingest for the frozen partition only, pages fetched from
// one node absorb into another bit-exactly, and drop empties the source.
func TestNodeAdminHTTPRoundTrip(t *testing.T) {
	c := newElasticServers(t, "")
	a, b := c.servers["n0"].URL, c.servers["n1"].URL
	line := `{"v":1,"ts":1700000000000,"metric":"rtt_ms","user":7,"region":"Beijing","net":"WiFi","value":42}` + "\n"
	e := telemetry.Envelope{V: 1, TS: 1700000000000, Metric: telemetry.MetricRTT, User: 7, Region: "Beijing", Net: "WiFi", Value: 42}
	p := e.Key().ShardOf(8)

	// Freeze the envelope's partition: direct ingest of it must refuse;
	// a conflicting freeze under a different partition count must 409.
	if code, body := postJSONBody(t, fmt.Sprintf("%s/admin/freeze?partition=%d&of=8", a, p), nil); code != http.StatusOK {
		t.Fatalf("freeze: %d %s", code, body)
	}
	if code, _ := postJSONBody(t, fmt.Sprintf("%s/admin/freeze?partition=%d&of=4", a, p%4), nil); code != http.StatusConflict {
		t.Fatal("conflicting freeze accepted")
	}
	if got := postFreezeProbe(t, a, line); got != 0 {
		t.Fatalf("frozen partition accepted %d", got)
	}
	if code, body := postJSONBody(t, fmt.Sprintf("%s/admin/unfreeze?partition=%d&of=8", a, p), nil); code != http.StatusOK {
		t.Fatalf("unfreeze: %d %s", code, body)
	}
	if got := postFreezeProbe(t, a, line); got != 1 {
		t.Fatalf("unfrozen partition accepted %d", got)
	}
	if code, body := postJSONBody(t, a+"/admin/flush", nil); code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}

	// Cut the partition's pages, absorb them into n1, drop them from n0:
	// n1's answer must be byte-identical to n0's before the drop.
	const q = "/query?metric=rtt_ms&q=0.5"
	_, before, _ := get(t, a+q)
	code, pagesBody, _ := get(t, fmt.Sprintf("%s/sketches/partition?partition=%d&of=8", a, p))
	if code != http.StatusOK {
		t.Fatalf("pages: %d %s", code, pagesBody)
	}
	var pages []telemetry.SketchPage
	if err := json.Unmarshal([]byte(pagesBody), &pages); err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no pages cut")
	}
	code, ackBody := postJSONBody(t, b+"/admin/absorb", pages)
	if code != http.StatusOK {
		t.Fatalf("absorb: %d %s", code, ackBody)
	}
	var ack telemetry.AbsorbAck
	if err := json.Unmarshal([]byte(ackBody), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Pages != len(pages) || ack.Count != 1 {
		t.Fatalf("absorb ack = %+v", ack)
	}
	code, dropBody := postJSONBody(t, fmt.Sprintf("%s/admin/drop?partition=%d&of=8", a, p), nil)
	if code != http.StatusOK {
		t.Fatalf("drop: %d %s", code, dropBody)
	}
	var dropped struct {
		Dropped int `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(dropBody), &dropped); err != nil {
		t.Fatal(err)
	}
	if dropped.Dropped == 0 {
		t.Fatal("drop removed nothing")
	}
	_, after, _ := get(t, b+q)
	if after != before {
		t.Fatalf("absorbed node differs from source:\n%s\n%s", after, before)
	}
	if code, body := postJSONBody(t, b+"/admin/absorb", []byte("nope")); code == http.StatusOK {
		t.Fatalf("malformed absorb accepted: %s", body)
	}
}

// postFreezeProbe posts one JSONL line straight at a node and returns the
// accepted count.
func postFreezeProbe(t *testing.T, nodeURL, line string) int {
	t.Helper()
	resp, err := http.Post(nodeURL+"/ingest", "application/jsonl", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack.Accepted
}
