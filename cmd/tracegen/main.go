// Command tracegen synthesises a platform workload trace (the stand-in for
// the paper's 3-month NEP dataset or the Azure 2019 dataset) and writes it
// as a compressed gob archive, optionally exporting the VM table as CSV.
//
// Usage:
//
//	tracegen -platform nep -apps 100 -days 28 -out nep.gob.gz -csv vms.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/rng"
	"edgescope/internal/vm"
	"edgescope/internal/workload"
)

func main() {
	platform := flag.String("platform", "nep", "nep or cloud")
	apps := flag.Int("apps", 0, "number of apps (0 = platform default)")
	days := flag.Int("days", 14, "trace duration in days")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output trace path (.gob.gz)")
	csvPath := flag.String("csv", "", "optional VM-table CSV export path")
	flag.Parse()

	if *out == "" && *csvPath == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -out and/or -csv")
		os.Exit(2)
	}

	opts := workload.Options{Apps: *apps, Days: *days}
	var (
		d   *vm.Dataset
		err error
	)
	switch *platform {
	case "nep":
		d, err = workload.GenerateNEP(rng.New(*seed), opts)
	case "cloud":
		d, err = workload.GenerateCloud(rng.New(*seed), opts)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: generated trace invalid:", err)
		os.Exit(1)
	}
	fmt.Printf("generated %s trace: %d sites, %d VMs, %d days\n",
		d.Platform, len(d.Sites), len(d.VMs), *days)

	if *out != "" {
		if err := vm.Save(d, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := vm.WriteVMTableCSV(d, f); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
