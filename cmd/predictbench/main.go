// Command predictbench runs the §4.4 forecasting comparison (Figure 14):
// Holt-Winters and LSTM predicting half-hour max/mean CPU on the edge and
// cloud traces, scored by rolling one-step-ahead RMSE.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	paper := flag.Bool("paper", false, "paper scale (more VMs, full LSTM epochs)")
	flag.Parse()

	scale := core.Small
	if *paper {
		scale = core.PaperScale
	}
	s := core.NewSuite(*seed, scale)
	if err := s.Figure14().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "predictbench:", err)
		os.Exit(1)
	}
}
