// Command gslbd runs the customer-side traffic scheduler of §2 as a real
// HTTP service: clients GET /route and are 302-redirected to a replica;
// replica agents POST /report?id=X&load=0.7. The policy implements either
// today's nearest-site routing or the load-aware GSLB §5 recommends.
//
// Usage:
//
//	gslbd -listen 127.0.0.1:8400 -policy load-aware -slack 6 \
//	      -backend gz-1=http://10.0.0.1:8080@10 \
//	      -backend sz-1=http://10.0.0.2:8080@15
//
// Each -backend is id=url@delayMs.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"edgescope/internal/gslb"
	"edgescope/internal/placement"
)

// backendFlags accumulates repeated -backend flags.
type backendFlags []gslb.Backend

func (b *backendFlags) String() string { return fmt.Sprintf("%d backends", len(*b)) }

func (b *backendFlags) Set(v string) error {
	eq := strings.Index(v, "=")
	at := strings.LastIndex(v, "@")
	if eq < 1 || at < eq {
		return fmt.Errorf("backend %q must be id=url@delayMs", v)
	}
	delay, err := strconv.ParseFloat(v[at+1:], 64)
	if err != nil {
		return fmt.Errorf("backend %q: bad delay: %w", v, err)
	}
	*b = append(*b, gslb.Backend{
		ID: v[:eq], URL: v[eq+1 : at], DelayMs: delay, CapacityRPS: 100,
	})
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8400", "listen address")
	policy := flag.String("policy", "nearest-site", "nearest-site or load-aware")
	slack := flag.Float64("slack", 6, "delay slack in ms for load-aware routing")
	var backends backendFlags
	flag.Var(&backends, "backend", "replica as id=url@delayMs (repeatable)")
	flag.Parse()

	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "gslbd: at least one -backend required")
		os.Exit(2)
	}
	var sched placement.Scheduler
	switch *policy {
	case "nearest-site":
		sched = placement.NearestSite{}
	case "load-aware":
		sched = placement.LoadAware{DelaySlackMs: *slack}
	default:
		fmt.Fprintf(os.Stderr, "gslbd: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	b := gslb.New(sched, 1)
	for _, be := range backends {
		if err := b.Register(be); err != nil {
			fmt.Fprintln(os.Stderr, "gslbd:", err)
			os.Exit(2)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gslbd:", err)
		os.Exit(1)
	}
	fmt.Printf("gslbd: %s routing %d backends on http://%s\n",
		sched.Name(), len(backends), ln.Addr())
	if err := (&http.Server{Handler: b.Handler()}).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "gslbd:", err)
		os.Exit(1)
	}
}
