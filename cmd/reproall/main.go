// Command reproall regenerates every table and figure of the paper in one
// run and prints them in paper order. Artifacts are built concurrently over
// a dependency-aware worker pool (substrates first, then independent
// artifacts); stdout is byte-identical for a given scenario regardless of
// -parallel (the wall-time report goes to stderr). With -csvdir it also
// exports each artifact as CSV for external plotting.
//
// The experiment sizing comes from the declarative scenario layer:
// -scenario accepts a built-in name (see -list) or a path to a JSON spec
// file, and -dump-scenario prints a built-in as JSON to edit into a custom
// scenario. The legacy -scale small|paper flag resolves onto the matching
// built-in scenarios.
//
// Profiling the reproduction itself is first-class: -cpuprofile and
// -memprofile write pprof profiles of the artifact run (the heap profile is
// taken after a final GC, so it shows what the run retains, and the
// inuse/alloc spaces show where the churn was). This is the profile-first
// workflow the README's Performance section documents.
//
// Observability of the run itself: -trace writes a Chrome trace-event JSON
// timeline of the scheduled DAG — one span per substrate and artifact on the
// track of the worker that ran it, plus the campaign's chunked observation
// fan-out — viewable at ui.perfetto.dev or chrome://tracing. -times-json
// writes the per-artifact wall-time report as machine-readable JSON
// ({"id","kind","wall_ns","worker"} records). Both are observation-only:
// stdout stays byte-identical with or without them.
//
// Usage:
//
//	reproall [-seed N] [-scenario NAME|file.json] [-scale small|paper]
//	         [-parallel N] [-csvdir DIR] [-only id,id,...] [-ext]
//	         [-quiet-times] [-list] [-dump-scenario NAME]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-trace FILE] [-times-json FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"edgescope/internal/core"
	"edgescope/internal/obs"
	"edgescope/internal/scenario"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed override (same seed → identical outputs; default: the scenario's)")
	scale := flag.String("scale", "small", "legacy experiment scale: small or paper (alias for the matching -scenario)")
	scn := flag.String("scenario", "", "scenario name from the registry, or path to a JSON spec (overrides -scale)")
	list := flag.Bool("list", false, "print all valid artifact IDs and registered scenario names, then exit")
	dump := flag.String("dump-scenario", "", "print the named scenario spec as JSON (a template for custom scenarios), then exit")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = one worker per CPU)")
	csvdir := flag.String("csvdir", "", "directory to export per-artifact CSVs")
	only := flag.String("only", "", "comma-separated artifact IDs to run (default all)")
	ext := flag.Bool("ext", false, "also run the extension experiments (density/migration/scheduling)")
	quietTimes := flag.Bool("quiet-times", false, "suppress the per-artifact wall-time report (stderr)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the artifact run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file after the run")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (open in Perfetto)")
	timesJSON := flag.String("times-json", "", "write the per-artifact wall-time report as JSON to this file")
	flag.Parse()

	if *list {
		fmt.Println("artifacts:")
		for _, id := range core.ArtifactIDs() {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("scenarios:")
		for _, name := range scenario.Names() {
			fmt.Printf("  %-14s %s\n", name, scenario.Notes(name))
		}
		return
	}
	if *dump != "" {
		sp, err := scenario.Resolve(*dump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproall: %v\n", err)
			os.Exit(2)
		}
		if err := scenario.Encode(os.Stdout, sp); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	suite, err := core.SuiteFromFlags(flag.CommandLine, *scn, *scale, "seed", *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproall: %v\n", err)
		os.Exit(2)
	}

	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproall: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pf.Close()
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(nil)
		suite.SetTracer(tracer)
	}

	start := time.Now()
	results, err := suite.RunArtifacts(context.Background(), *parallel, ids, *ext)
	if err != nil {
		if *cpuprofile != "" {
			pprof.StopCPUProfile() // flush the partial profile before exiting
		}
		fmt.Fprintf(os.Stderr, "reproall: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}

	for _, a := range results {
		if a.Artifact == nil {
			continue
		}
		fmt.Printf("\n# %s — %s\n", a.ID, a.Desc)
		if err := a.Artifact.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: render %s: %v\n", a.ID, err)
			os.Exit(1)
		}
		if *csvdir != "" {
			if err := exportCSV(*csvdir, a); err != nil {
				fmt.Fprintf(os.Stderr, "reproall: %v\n", err)
				os.Exit(1)
			}
		}
	}

	// Timings go to stderr: stdout stays byte-identical for a given scenario
	// regardless of -parallel, so `reproall > out.txt` is diffable.
	if !*quietTimes {
		fmt.Fprintf(os.Stderr, "\n# wall time per artifact (scenario=%s seed=%d parallel=%d, total %v)\n",
			suite.Name(), suite.Seed, *parallel, wall.Round(time.Millisecond))
		var sum time.Duration
		for _, a := range results {
			kind := "artifact "
			if a.Artifact == nil {
				kind = "substrate"
			}
			fmt.Fprintf(os.Stderr, "  %s %-26s %10v\n", kind, a.ID, a.Elapsed.Round(time.Microsecond))
			sum += a.Elapsed
		}
		fmt.Fprintf(os.Stderr, "  cpu-time sum %v (speedup ×%.2f over serial replay)\n",
			sum.Round(time.Millisecond), float64(sum)/float64(wall))
	}

	if *traceFile != "" {
		if err := writeTrace(*traceFile, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: trace: %v (results above are complete)\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "reproall: trace written to %s (open at ui.perfetto.dev)\n", *traceFile)
	}
	if *timesJSON != "" {
		if err := writeTimesJSON(*timesJSON, results); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: times-json: %v (results above are complete)\n", err)
			os.Exit(1)
		}
	}

	// The heap profile is written last, after every artifact and CSV is out:
	// the profile is a diagnostic side-channel and must never discard a
	// completed run's results. A write failure still exits non-zero so
	// scripted profiling notices.
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: memprofile: %v (results above are complete)\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "reproall: heap profile written to %s (go tool pprof -alloc_space %s)\n",
			*memprofile, *memprofile)
	}
}

// writeTrace serializes the recorded span timeline as Chrome trace JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// timeRecord is one -times-json entry: where one scheduled unit's wall time
// went and which pool slot ran it.
type timeRecord struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"` // "substrate" or "artifact"
	WallNS int64  `json:"wall_ns"`
	Worker int    `json:"worker"`
}

// writeTimesJSON exports the wall-time report machine-readably, in the same
// order as the stderr table (substrates first, then paper order).
func writeTimesJSON(path string, results []core.ArtifactResult) error {
	recs := make([]timeRecord, 0, len(results))
	for _, a := range results {
		kind := "artifact"
		if a.Artifact == nil {
			kind = "substrate"
		}
		recs = append(recs, timeRecord{ID: a.ID, Kind: kind, WallNS: a.Elapsed.Nanoseconds(), Worker: a.Worker})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeapProfile snapshots the heap after a final GC, so the profile
// shows retention (inuse) and the full churn history (alloc) separately.
func writeHeapProfile(path string) error {
	mf, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(mf); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}

func exportCSV(dir string, a core.ArtifactResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, a.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := a.Artifact.WriteCSV(f); err != nil {
		return fmt.Errorf("export %s: %w", a.ID, err)
	}
	return f.Close()
}
