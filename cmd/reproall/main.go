// Command reproall regenerates every table and figure of the paper in one
// run and prints them in paper order. With -csvdir it also exports each
// artifact as CSV for external plotting.
//
// Usage:
//
//	reproall [-seed N] [-scale small|paper] [-csvdir DIR] [-only id,id,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"edgescope/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed (same seed → identical outputs)")
	scale := flag.String("scale", "small", "experiment scale: small or paper")
	csvdir := flag.String("csvdir", "", "directory to export per-artifact CSVs")
	only := flag.String("only", "", "comma-separated artifact IDs to run (default all)")
	ext := flag.Bool("ext", false, "also run the extension experiments (density/migration/scheduling)")
	flag.Parse()

	sc := core.Small
	switch *scale {
	case "small":
	case "paper":
		sc = core.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "reproall: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	filter := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			filter[id] = true
		}
	}

	suite := core.NewSuite(*seed, sc)
	artifacts := suite.All()
	if *ext {
		artifacts = append(artifacts, suite.Extensions()...)
	}
	for _, a := range artifacts {
		if len(filter) > 0 && !filter[a.ID] {
			continue
		}
		fmt.Printf("\n# %s — %s\n", a.ID, a.Desc)
		if err := a.Artifact.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reproall: render %s: %v\n", a.ID, err)
			os.Exit(1)
		}
		if *csvdir != "" {
			if err := exportCSV(*csvdir, a); err != nil {
				fmt.Fprintf(os.Stderr, "reproall: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func exportCSV(dir string, a core.NamedArtifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, a.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := a.Artifact.WriteCSV(f); err != nil {
		return fmt.Errorf("export %s: %w", a.ID, err)
	}
	return f.Close()
}
