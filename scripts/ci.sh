#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate plus the perf-trajectory snapshot.
#
#   gofmt cleanliness  → build  → vet  → full tests
#   → race tests (concurrency-bearing packages)
#   → short fuzz passes (wire decoder + the durability surfaces: WAL
#     segment replay, snapshot decode, sketch codec)
#   → chaos smoke: a seeded drop+duplicate+reorder fault plan on the small
#     scenario through the retrying client must answer byte-identically to
#     a clean run, and a killed durable ingestor must recover to the same
#     answers
#   → metrics smoke: a live telemetryd (replaying the small scenario, with
#     -pprof) must serve /metrics as well-formed Prometheus exposition
#     carrying the ingest families — scraped and linted by cmd/metriclint
#   → cluster smoke: a 3-node cluster + frontend on loopback replaying the
#     small scenario must answer /query byte-identically to a single-node
#     replay; a SIGKILLed member must surface as an explicit partial
#     result; a restarted member (WAL recovery) must reconverge
#   → rebalance smoke: a fourth node joins the live cluster through
#     POST /admin/join (sketch-page handoff, epoch activation), then a
#     member drains and leaves — /query and /keys must stay byte-identical
#     to the single-node replay at every epoch, with no daemon restarted
#   → scenario smoke: small built-in scenarios through reproall, with the
#     -parallel invariance diff (stdout must be byte-identical at any
#     worker count)
#   → short paper-artifact benchmarks, compared against the committed
#     BENCH.json by `benchdump -compare`: the delta table lands in the CI
#     log, and the allocation-budget gate fails the run if B/op or
#     allocs/op on the named hot benchmarks regresses more than 15%. On
#     success the fresh snapshot replaces BENCH.json (commit it to ratchet
#     the trajectory).
#
# Usage: scripts/ci.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

# The allocation-budget gate: the benchmarks the allocation overhaul pinned
# down. B/op and allocs/op (not ns/op) are gated because allocation metrics
# are stable across machines; 15% headroom absorbs benchtime-iteration
# jitter. The list lives in scripts/bench_gate so `make bench-compare` and
# CI cannot drift.
BENCH_GATE="$(cat scripts/bench_gate)"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test =="
go test ./...

echo "== race (parallel engine packages) =="
go test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/ ./internal/telemetry/cluster/ ./cmd/telemetryd/

echo "== fuzz (telemetry decoder, 5s) =="
go test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/

echo "== fuzz (durability surfaces: WAL replay, snapshot, sketch codec; 3s each) =="
go test -run xxx -fuzz FuzzWALSegmentReplay -fuzztime 3s ./internal/telemetry/
go test -run xxx -fuzz FuzzSnapshotDecode -fuzztime 3s ./internal/telemetry/
go test -run xxx -fuzz FuzzSketchUnmarshalBinary -fuzztime 3s ./internal/stats/

echo "== chaos smoke (seeded drop+dup+reorder on small, retrying client) =="
# The chaos acceptance pin: >=1% drops, duplicates and reorders injected
# into the small scenario's stream through the retrying client must deliver
# exactly once and answer every quantile/CDF query byte-identically to a
# clean run, with the fault trace reproducible from the seed. The kill-and-
# recover pin rides along: a crashed durable ingestor reopens to the same
# answers.
go test -count=1 -run 'TestChaosEquivalenceAcrossScenarios/small|TestKillAndRecoverByteIdentical' ./internal/telemetry/

smoke=$(mktemp -d .ci-smoke.XXXXXX)
trap 'rm -rf "$smoke"' EXIT

echo "== metrics smoke (live telemetryd /metrics through metriclint) =="
go build -o "$smoke/telemetryd" ./cmd/telemetryd
go build -o "$smoke/metriclint" ./cmd/metriclint
METRICS_PORT="${METRICS_PORT:-18355}"
"$smoke/telemetryd" -addr "127.0.0.1:$METRICS_PORT" -replay -scenario small \
  -pprof -log-format json 2> "$smoke/telemetryd.log" &
TELEMETRYD_PID=$!
trap 'kill "$TELEMETRYD_PID" 2>/dev/null; rm -rf "$smoke"' EXIT
scrape_ok=""
for _ in $(seq 1 60); do
  if "$smoke/metriclint" -url "http://127.0.0.1:$METRICS_PORT/metrics" \
      -require telemetry_ingest_accepted_total,telemetry_ingest_processed_total,telemetry_shard_queue_depth \
      2> "$smoke/metriclint.err"; then
    scrape_ok=1
    break
  fi
  sleep 0.5
done
if [[ -z "$scrape_ok" ]]; then
  echo "metrics smoke failed:" >&2
  cat "$smoke/metriclint.err" >&2
  cat "$smoke/telemetryd.log" >&2
  exit 1
fi
kill "$TELEMETRYD_PID" 2>/dev/null
wait "$TELEMETRYD_PID" 2>/dev/null || true
trap 'rm -rf "$smoke"' EXIT
echo "  /metrics well-formed, ingest families present"

echo "== cluster smoke (3 durable nodes + frontend: replay, kill, partial, recover) =="
# The distributed acceptance story end to end, over real processes and real
# HTTP: a 3-node cluster replaying the small scenario through the frontend
# router must answer /query byte-identically to a single-node replay; with
# one member SIGKILLed the frontend must say "partial" and name the member;
# after a restart (WAL recovery) the answer must reconverge to the same
# bytes.
CLUSTER_BASE="${CLUSTER_PORT_BASE:-18360}"
N0=$((CLUSTER_BASE)); N1=$((CLUSTER_BASE + 1)); N2=$((CLUSTER_BASE + 2))
FRONT=$((CLUSTER_BASE + 3)); SINGLE=$((CLUSTER_BASE + 4))
PEERS="n0=http://127.0.0.1:$N0,n1=http://127.0.0.1:$N1,n2=http://127.0.0.1:$N2"
QS='metric=rtt_ms&q=0.5,0.95,0.99&cdf=10,50,100'
CLUSTER_PIDS=()
cluster_cleanup() {
  for pid in ${CLUSTER_PIDS[@]+"${CLUSTER_PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap 'cluster_cleanup; rm -rf "$smoke"' EXIT
start_node() { # id port [peers]
  "$smoke/telemetryd" -role node -node-id "$1" -peers "${3:-$PEERS}" \
    -addr "127.0.0.1:$2" -data "$smoke/cluster-$1" -sync-every 1 \
    -log-format json 2>> "$smoke/cluster-$1.log" &
  CLUSTER_PIDS+=($!)
}
wait_http() { # url tries
  for _ in $(seq 1 "${2:-100}"); do
    if curl -fsS "$1" > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timeout waiting for $1" >&2
  return 1
}
start_node n0 "$N0"
start_node n1 "$N1"; NODE1_PID=$!
start_node n2 "$N2"
wait_http "http://127.0.0.1:$N0/healthz"
wait_http "http://127.0.0.1:$N1/healthz"
wait_http "http://127.0.0.1:$N2/healthz"

# The single-node reference: the identical replay, one process.
"$smoke/telemetryd" -addr "127.0.0.1:$SINGLE" -replay -scenario small \
  -log-format json 2> "$smoke/cluster-single.log" &
CLUSTER_PIDS+=($!)
# The frontend replays the same campaign through the partition router; it
# only starts serving once the replay is done. -data gives it a place to
# persist each activated assignment (the rebalance smoke checks it).
"$smoke/telemetryd" -role frontend -addr "127.0.0.1:$FRONT" -peers "$PEERS" \
  -probe-interval 200ms -node-timeout 1s -replay -scenario small \
  -data "$smoke/cluster-frontend-state" \
  -log-format json 2> "$smoke/cluster-frontend.log" &
CLUSTER_PIDS+=($!)
wait_http "http://127.0.0.1:$SINGLE/healthz" 300
wait_http "http://127.0.0.1:$FRONT/healthz" 600

curl -fsS "http://127.0.0.1:$SINGLE/query?$QS" > "$smoke/cluster-single-query.json"
curl -fsS "http://127.0.0.1:$SINGLE/keys" > "$smoke/cluster-single-keys.json"
# The member queues drain asynchronously after the routed replay, so poll
# until the scatter-gathered answer converges to the single-node bytes.
converge() { # outfile tries
  for _ in $(seq 1 "${2:-100}"); do
    curl -fsS "http://127.0.0.1:$FRONT/query?$QS" > "$1" 2>/dev/null || true
    if diff -q "$smoke/cluster-single-query.json" "$1" > /dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "cluster /query never converged to the single-node answer:" >&2
  diff "$smoke/cluster-single-query.json" "$1" >&2 || true
  cat "$smoke/cluster-frontend.log" >&2
  return 1
}
converge "$smoke/cluster-query.json"
curl -fsS "http://127.0.0.1:$FRONT/keys" > "$smoke/cluster-keys.json"
diff "$smoke/cluster-single-keys.json" "$smoke/cluster-keys.json"
echo "  3-node /query and /keys byte-identical to a single-node replay"

kill -9 "$NODE1_PID" 2>/dev/null
partial_ok=""
for _ in $(seq 1 100); do
  curl -fsS "http://127.0.0.1:$FRONT/query?$QS" > "$smoke/cluster-partial.json" 2>/dev/null || true
  if grep -q '"partial": true' "$smoke/cluster-partial.json" &&
      grep -q '"n1"' "$smoke/cluster-partial.json"; then
    partial_ok=1
    break
  fi
  sleep 0.2
done
if [[ -z "$partial_ok" ]]; then
  echo "frontend never reported the killed member as a partial result:" >&2
  cat "$smoke/cluster-partial.json" >&2
  cat "$smoke/cluster-frontend.log" >&2
  exit 1
fi
echo "  killed n1: /query answers partial, naming the missing member"

start_node n1 "$N1"
converge "$smoke/cluster-recovered.json" 150
echo "  n1 recovered from its WAL: /query reconverged to the single-node bytes"

echo "== rebalance smoke (live join, drain, leave through /admin) =="
# Elastic membership end to end over real processes: a fourth node joins
# the loaded cluster (sketch-page handoff, atomic epoch activation) and
# /query + /keys must stay byte-identical to the single-node replay; then
# n2 drains and leaves — still byte-identical, with no daemon restarted.
N3=$((CLUSTER_BASE + 5))
PEERS4="$PEERS,n3=http://127.0.0.1:$N3"
start_node n3 "$N3" "$PEERS4"
wait_http "http://127.0.0.1:$N3/healthz"
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"id\":\"n3\",\"url\":\"http://127.0.0.1:$N3\"}" \
  "http://127.0.0.1:$FRONT/admin/join" > "$smoke/cluster-join.json"
active_at() { # epoch tries
  for _ in $(seq 1 "${2:-100}"); do
    curl -fsS "http://127.0.0.1:$FRONT/admin/assignment" \
      > "$smoke/cluster-assignment.json" 2>/dev/null || true
    if grep -q '"status": "active"' "$smoke/cluster-assignment.json" &&
        grep -q "\"epoch\": $1" "$smoke/cluster-assignment.json"; then
      return 0
    fi
    sleep 0.2
  done
  echo "assignment never activated at epoch $1:" >&2
  cat "$smoke/cluster-assignment.json" >&2
  cat "$smoke/cluster-frontend.log" >&2
  return 1
}
active_at 2
converge "$smoke/cluster-joined-query.json" 150
curl -fsS "http://127.0.0.1:$FRONT/keys" > "$smoke/cluster-joined-keys.json"
diff "$smoke/cluster-single-keys.json" "$smoke/cluster-joined-keys.json"
grep -q '"n3"' "$smoke/cluster-frontend-state/cluster-state.json"
echo "  n3 joined live: epoch 2 active, /query and /keys still byte-identical"

curl -fsS -X POST -H 'Content-Type: application/json' -d '{"id":"n2"}' \
  "http://127.0.0.1:$FRONT/admin/drain" > /dev/null
active_at 3
curl -fsS -X POST -H 'Content-Type: application/json' -d '{"id":"n2"}' \
  "http://127.0.0.1:$FRONT/admin/leave" > /dev/null
active_at 4
converge "$smoke/cluster-left-query.json" 150
curl -fsS "http://127.0.0.1:$FRONT/keys" > "$smoke/cluster-left-keys.json"
diff "$smoke/cluster-single-keys.json" "$smoke/cluster-left-keys.json"
echo "  n2 drained and left: epoch 4 active, answers still byte-identical"
cluster_cleanup
CLUSTER_PIDS=()
trap 'rm -rf "$smoke"' EXIT

echo "== scenario smoke (reproall, parallel-invariance diff) =="
go build -o "$smoke/reproall" ./cmd/reproall
"$smoke/reproall" -list > /dev/null
for sc in small dense-metro rural-sparse flash-crowd; do
  "$smoke/reproall" -scenario "$sc" -parallel 1 -quiet-times > "$smoke/$sc-p1.txt"
  "$smoke/reproall" -scenario "$sc" -parallel 4 -quiet-times > "$smoke/$sc-p4.txt"
  diff "$smoke/$sc-p1.txt" "$smoke/$sc-p4.txt"
  echo "  $sc ok ($(wc -c < "$smoke/$sc-p1.txt") bytes, parallel-invariant)"
done

if [[ "${1:-}" != "--no-bench" ]]; then
  echo "== bench → compare gate → BENCH.json =="
  # The scenario tag comes from the `scenario:` context line bench_test.go
  # prints, so BENCH.json always names what actually ran. -benchtime 100ms
  # gives the sub-microsecond benchmarks meaningful iteration counts; the
  # RunAll pair (which a 100ms budget runs exactly once) is re-benched at an
  # iteration-count -benchtime so its recorded ns/op is a ≥2-iteration
  # statistic — benchdump keeps the higher-iteration entry per name.
  { go test -bench . -benchmem -benchtime 100ms -run xxx . &&
    go test -bench '^BenchmarkRunAll(Serial|Parallel)$' -benchmem -benchtime 2x -run xxx . ; } \
    | tee /dev/stderr \
    | go run ./cmd/benchdump -out "$smoke/BENCH.new.json"
  # Gate against the COMMITTED baseline (not the working-tree file, which a
  # previous passing run may have refreshed): repeated local runs must not
  # ratchet +14% drifts under a 15% budget. Outside git, fall back to the
  # tree snapshot.
  git show HEAD:BENCH.json > "$smoke/BENCH.base.json" 2>/dev/null \
    || cp BENCH.json "$smoke/BENCH.base.json"
  echo "-- benchdump delta vs committed BENCH.json --"
  go run ./cmd/benchdump -compare -gate "$BENCH_GATE" -tolerance 0.15 \
    "$smoke/BENCH.base.json" "$smoke/BENCH.new.json"
  mv "$smoke/BENCH.new.json" BENCH.json
fi

echo "== ci OK =="
