#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate plus the perf-trajectory snapshot.
#
#   build  → vet  → full tests  → race tests (concurrency-bearing packages)
#   → short fuzz pass (decoder hardening)
#   → short paper-artifact benchmarks recorded to BENCH.json via benchdump
#
# Usage: scripts/ci.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test =="
go test ./...

echo "== race (parallel engine packages) =="
go test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/

echo "== fuzz (telemetry decoder, 5s) =="
go test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/

if [[ "${1:-}" != "--no-bench" ]]; then
  echo "== bench → BENCH.json =="
  go test -bench . -benchmem -benchtime 1x -run xxx . \
    | tee /dev/stderr \
    | go run ./cmd/benchdump -out BENCH.json
fi

echo "== ci OK =="
