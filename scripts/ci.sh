#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate plus the perf-trajectory snapshot.
#
#   gofmt cleanliness  → build  → vet  → full tests
#   → race tests (concurrency-bearing packages)
#   → short fuzz pass (decoder hardening)
#   → scenario smoke: small built-in scenarios through reproall, with the
#     -parallel invariance diff (stdout must be byte-identical at any
#     worker count)
#   → short paper-artifact benchmarks recorded to BENCH.json via benchdump
#     (tagged with the scenario the bench suite runs)
#
# Usage: scripts/ci.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test =="
go test ./...

echo "== race (parallel engine packages) =="
go test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/

echo "== fuzz (telemetry decoder, 5s) =="
go test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/

echo "== scenario smoke (reproall, parallel-invariance diff) =="
smoke=$(mktemp -d .ci-smoke.XXXXXX)
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke/reproall" ./cmd/reproall
"$smoke/reproall" -list > /dev/null
for sc in small dense-metro rural-sparse flash-crowd; do
  "$smoke/reproall" -scenario "$sc" -parallel 1 -quiet-times > "$smoke/$sc-p1.txt"
  "$smoke/reproall" -scenario "$sc" -parallel 4 -quiet-times > "$smoke/$sc-p4.txt"
  diff "$smoke/$sc-p1.txt" "$smoke/$sc-p4.txt"
  echo "  $sc ok ($(wc -c < "$smoke/$sc-p1.txt") bytes, parallel-invariant)"
done

if [[ "${1:-}" != "--no-bench" ]]; then
  echo "== bench → BENCH.json =="
  # The scenario tag comes from the `scenario:` context line bench_test.go
  # prints, so BENCH.json always names what actually ran.
  go test -bench . -benchmem -benchtime 1x -run xxx . \
    | tee /dev/stderr \
    | go run ./cmd/benchdump -out BENCH.json
fi

echo "== ci OK =="
