#!/usr/bin/env bash
# ci.sh — the repo's tier-1 gate plus the perf-trajectory snapshot.
#
#   gofmt cleanliness  → build  → vet  → full tests
#   → race tests (concurrency-bearing packages)
#   → short fuzz passes (wire decoder + the durability surfaces: WAL
#     segment replay, snapshot decode, sketch codec)
#   → chaos smoke: a seeded drop+duplicate+reorder fault plan on the small
#     scenario through the retrying client must answer byte-identically to
#     a clean run, and a killed durable ingestor must recover to the same
#     answers
#   → metrics smoke: a live telemetryd (replaying the small scenario, with
#     -pprof) must serve /metrics as well-formed Prometheus exposition
#     carrying the ingest families — scraped and linted by cmd/metriclint
#   → scenario smoke: small built-in scenarios through reproall, with the
#     -parallel invariance diff (stdout must be byte-identical at any
#     worker count)
#   → short paper-artifact benchmarks, compared against the committed
#     BENCH.json by `benchdump -compare`: the delta table lands in the CI
#     log, and the allocation-budget gate fails the run if B/op or
#     allocs/op on the named hot benchmarks regresses more than 15%. On
#     success the fresh snapshot replaces BENCH.json (commit it to ratchet
#     the trajectory).
#
# Usage: scripts/ci.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

# The allocation-budget gate: the benchmarks the allocation overhaul pinned
# down. B/op and allocs/op (not ns/op) are gated because allocation metrics
# are stable across machines; 15% headroom absorbs benchtime-iteration
# jitter. The list lives in scripts/bench_gate so `make bench-compare` and
# CI cannot drift.
BENCH_GATE="$(cat scripts/bench_gate)"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test =="
go test ./...

echo "== race (parallel engine packages) =="
go test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/

echo "== fuzz (telemetry decoder, 5s) =="
go test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/

echo "== fuzz (durability surfaces: WAL replay, snapshot, sketch codec; 3s each) =="
go test -run xxx -fuzz FuzzWALSegmentReplay -fuzztime 3s ./internal/telemetry/
go test -run xxx -fuzz FuzzSnapshotDecode -fuzztime 3s ./internal/telemetry/
go test -run xxx -fuzz FuzzSketchUnmarshalBinary -fuzztime 3s ./internal/stats/

echo "== chaos smoke (seeded drop+dup+reorder on small, retrying client) =="
# The chaos acceptance pin: >=1% drops, duplicates and reorders injected
# into the small scenario's stream through the retrying client must deliver
# exactly once and answer every quantile/CDF query byte-identically to a
# clean run, with the fault trace reproducible from the seed. The kill-and-
# recover pin rides along: a crashed durable ingestor reopens to the same
# answers.
go test -count=1 -run 'TestChaosEquivalenceAcrossScenarios/small|TestKillAndRecoverByteIdentical' ./internal/telemetry/

smoke=$(mktemp -d .ci-smoke.XXXXXX)
trap 'rm -rf "$smoke"' EXIT

echo "== metrics smoke (live telemetryd /metrics through metriclint) =="
go build -o "$smoke/telemetryd" ./cmd/telemetryd
go build -o "$smoke/metriclint" ./cmd/metriclint
METRICS_PORT="${METRICS_PORT:-18355}"
"$smoke/telemetryd" -addr "127.0.0.1:$METRICS_PORT" -replay -scenario small \
  -pprof -log-format json 2> "$smoke/telemetryd.log" &
TELEMETRYD_PID=$!
trap 'kill "$TELEMETRYD_PID" 2>/dev/null; rm -rf "$smoke"' EXIT
scrape_ok=""
for _ in $(seq 1 60); do
  if "$smoke/metriclint" -url "http://127.0.0.1:$METRICS_PORT/metrics" \
      -require telemetry_ingest_accepted_total,telemetry_ingest_processed_total,telemetry_shard_queue_depth \
      2> "$smoke/metriclint.err"; then
    scrape_ok=1
    break
  fi
  sleep 0.5
done
if [[ -z "$scrape_ok" ]]; then
  echo "metrics smoke failed:" >&2
  cat "$smoke/metriclint.err" >&2
  cat "$smoke/telemetryd.log" >&2
  exit 1
fi
kill "$TELEMETRYD_PID" 2>/dev/null
wait "$TELEMETRYD_PID" 2>/dev/null || true
trap 'rm -rf "$smoke"' EXIT
echo "  /metrics well-formed, ingest families present"

echo "== scenario smoke (reproall, parallel-invariance diff) =="
go build -o "$smoke/reproall" ./cmd/reproall
"$smoke/reproall" -list > /dev/null
for sc in small dense-metro rural-sparse flash-crowd; do
  "$smoke/reproall" -scenario "$sc" -parallel 1 -quiet-times > "$smoke/$sc-p1.txt"
  "$smoke/reproall" -scenario "$sc" -parallel 4 -quiet-times > "$smoke/$sc-p4.txt"
  diff "$smoke/$sc-p1.txt" "$smoke/$sc-p4.txt"
  echo "  $sc ok ($(wc -c < "$smoke/$sc-p1.txt") bytes, parallel-invariant)"
done

if [[ "${1:-}" != "--no-bench" ]]; then
  echo "== bench → compare gate → BENCH.json =="
  # The scenario tag comes from the `scenario:` context line bench_test.go
  # prints, so BENCH.json always names what actually ran. -benchtime 100ms
  # gives the sub-microsecond benchmarks meaningful iteration counts; the
  # RunAll pair (which a 100ms budget runs exactly once) is re-benched at an
  # iteration-count -benchtime so its recorded ns/op is a ≥2-iteration
  # statistic — benchdump keeps the higher-iteration entry per name.
  { go test -bench . -benchmem -benchtime 100ms -run xxx . &&
    go test -bench '^BenchmarkRunAll(Serial|Parallel)$' -benchmem -benchtime 2x -run xxx . ; } \
    | tee /dev/stderr \
    | go run ./cmd/benchdump -out "$smoke/BENCH.new.json"
  # Gate against the COMMITTED baseline (not the working-tree file, which a
  # previous passing run may have refreshed): repeated local runs must not
  # ratchet +14% drifts under a 15% budget. Outside git, fall back to the
  # tree snapshot.
  git show HEAD:BENCH.json > "$smoke/BENCH.base.json" 2>/dev/null \
    || cp BENCH.json "$smoke/BENCH.base.json"
  echo "-- benchdump delta vs committed BENCH.json --"
  go run ./cmd/benchdump -compare -gate "$BENCH_GATE" -tolerance 0.15 \
    "$smoke/BENCH.base.json" "$smoke/BENCH.new.json"
  mv "$smoke/BENCH.new.json" BENCH.json
fi

echo "== ci OK =="
