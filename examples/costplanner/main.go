// Costplanner: "should I move my app from the cloud to the edge?" — the
// §4.5 decision, automated. It generates an edge workload, prices every app
// on NEP and on both virtual cloud baselines, and reports which apps save
// money (and which are the paper's exceptions).
package main

import (
	"fmt"
	"sort"

	"edgescope/internal/billing"
	"edgescope/internal/rng"
	"edgescope/internal/workload"
)

func main() {
	trace, err := workload.GenerateNEP(rng.New(3), workload.Options{Apps: 40, Days: 14})
	if err != nil {
		panic(err)
	}

	nep := billing.NEPAppBills(trace)
	cloud := billing.CloudAppBills(trace,
		billing.VCloud1Hardware(), billing.VCloud1Net(), billing.OnDemandBandwidth)
	cloudBy := map[int]billing.AppBill{}
	for _, b := range cloud {
		cloudBy[b.App] = b
	}

	type verdict struct {
		app          int
		nep, cloud   billing.Money
		networkShare float64
	}
	var vs []verdict
	for _, b := range nep {
		if b.Total() == 0 {
			continue
		}
		vs = append(vs, verdict{
			app: b.App, nep: b.Total(), cloud: cloudBy[b.App].Total(),
			networkShare: b.Network / b.Total(),
		})
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].nep > vs[j].nep })

	cheaper := 0
	fmt.Println("app   NEP/month    vCloud-1/month  ratio   net-share  verdict")
	for i, v := range vs {
		ratio := v.cloud / v.nep
		verdictStr := "stay on cloud"
		if ratio > 1 {
			verdictStr = "move to edge"
			cheaper++
		}
		if i < 12 {
			fmt.Printf("%-4d  %10.0f   %12.0f    %5.2f   %8.0f%%  %s\n",
				v.app, v.nep, v.cloud, ratio, 100*v.networkShare, verdictStr)
		}
	}
	fmt.Printf("\n%d of %d apps are cheaper on the edge (paper: ~45%% mean saving;\n",
		cheaper, len(vs))
	fmt.Println("exceptions are hardware-heavy or high-variance apps).")

	b := billing.Breakdown(trace, 25)
	fmt.Printf("network share of edge bills: mean %.0f%%, max %.0f%% (paper: 76%%/96%%)\n",
		100*b.MeanNetworkShare, 100*b.MaxNetworkShare)
}
