// Quickstart: build the edge platform, run a small crowd campaign, and
// print the headline latency comparison — the fastest path through the
// edgescope API.
package main

import (
	"fmt"

	"edgescope/internal/crowd"
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

func main() {
	r := rng.New(42)

	// A campaign bundles the NEP edge platform (~520 sites), the AliCloud
	// baseline (8 regions) and a crowd of measurement users.
	campaign := crowd.NewCampaign(r, scenario.CrowdSpec{Users: 50, Repeats: 15})
	fmt.Printf("platform: %d edge sites, %d cloud regions, %d users\n",
		len(campaign.NEP.Sites), len(campaign.Cloud.Sites), len(campaign.Users))

	// Run the ping campaign and aggregate per-user medians.
	obs := campaign.RunLatency(r.Fork("latency"))
	for _, access := range []netmodel.Access{netmodel.WiFi, netmodel.LTE} {
		edge := crowd.MedianRTTAcrossUsers(obs, access, crowd.NearestEdge)
		cloud := crowd.MedianRTTAcrossUsers(obs, access, crowd.NearestCloud)
		fmt.Printf("%-4s  nearest edge %5.1f ms   nearest cloud %5.1f ms   edge wins %.2fx\n",
			access, edge, cloud, cloud/edge)
	}

	// Jitter: the edge is far more stable.
	edgeCV := crowd.MedianCVAcrossUsers(obs, netmodel.WiFi, crowd.NearestEdge)
	cloudCV := crowd.MedianCVAcrossUsers(obs, netmodel.WiFi, crowd.NearestCloud)
	fmt.Printf("WiFi RTT jitter (CV): edge %.3f vs cloud %.3f (%.1fx more stable)\n",
		edgeCV, cloudCV, cloudCV/edgeCV)
}
