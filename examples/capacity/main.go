// Capacity: prediction-driven operations for an edge provider (§4.4's
// implication). It forecasts per-VM CPU with Holt-Winters, compares
// placement strategies' load balance, and shows load-aware request
// scheduling fixing the §4.3 hot-replica pathology.
package main

import (
	"fmt"

	"edgescope/internal/placement"
	"edgescope/internal/predict"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
	"edgescope/internal/workload"
)

func main() {
	r := rng.New(5)

	// 1. Forecast VM usage: edge workloads are strongly seasonal, so even
	// the statistical model predicts the next half-hour well.
	trace, err := workload.GenerateNEP(r.Fork("trace"), workload.Options{Apps: 15, Days: 8})
	if err != nil {
		panic(err)
	}
	res, err := predict.Evaluate(trace, predict.Options{
		MaxVMs: 25, Models: []string{"holt-winters"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Holt-Winters next-30-min forecast over %d VMs:\n", 25)
	fmt.Printf("  max-CPU median RMSE:  %.2f pct-points\n",
		predict.MedianRMSE(res, "holt-winters", predict.MaxCPU))
	fmt.Printf("  mean-CPU median RMSE: %.2f pct-points\n\n",
		predict.MedianRMSE(res, "holt-winters", predict.MeanCPU))

	// 2. Placement ablation: how balanced does each strategy leave the
	// cluster's sales ratio?
	for _, strat := range []placement.Strategy{
		placement.NEPDefault{}, placement.BestFit{}, placement.Random{},
	} {
		t, err := workload.GenerateNEP(r.Fork("p"+strat.Name()), workload.Options{
			Apps: 15, Days: 2, Strategy: strat,
		})
		if err != nil {
			panic(err)
		}
		var rates []float64
		for _, sr := range t.SiteSalesRates() {
			rates = append(rates, sr.CPU)
		}
		fmt.Printf("placement %-12s cross-site CPU sales-rate gap (P95/P5): %6.1fx\n",
			strat.Name(), stats.GapRatio(rates, 0.005))
	}

	// 3. Request scheduling: nearest-site vs load-aware GSLB.
	replicas := []placement.Replica{
		{CapacityRPS: 100, DelayMs: 10},
		{CapacityRPS: 100, DelayMs: 13},
		{CapacityRPS: 100, DelayMs: 15},
	}
	near := placement.SimulateScheduling(r.Fork("near"), placement.NearestSite{}, replicas, 4000)
	aware := placement.SimulateScheduling(r.Fork("aware"),
		placement.LoadAware{DelaySlackMs: 6}, replicas, 4000)
	fmt.Printf("\nscheduler %-13s max load %.2f  time>80%%: %4.1f%%  mean delay %.1f ms\n",
		near.SchedulerName, near.MaxLoad, 100*near.OverThresholdFrac, near.MeanDelayMs)
	fmt.Printf("scheduler %-13s max load %.2f  time>80%%: %4.1f%%  mean delay %.1f ms\n",
		aware.SchedulerName, aware.MaxLoad, 100*aware.OverThresholdFrac, aware.MeanDelayMs)
	fmt.Println("\nLoad-aware scheduling trades a few ms of delay for eliminating the")
	fmt.Println("hot replica — viable because nearby edge sites are milliseconds apart.")
}
