// Trafficrouting: the §2 "end-user traffic scheduling" operation over real
// sockets. An edge customer runs three replica app servers; a GSLB balancer
// routes clients to them via HTTP 302. Nearest-site routing pins the closest
// replica; load-aware routing spreads once the hot replica reports load —
// the §4.3 fix, live.
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"edgescope/internal/gslb"
	"edgescope/internal/placement"
)

func appServer(id string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello from %s", id)
	}))
}

func drive(policy placement.Scheduler, report bool) {
	b := gslb.New(policy, 1)
	backends := map[string]*httptest.Server{}
	for _, spec := range []struct {
		id      string
		delayMs float64
	}{
		{"guangzhou-1", 10}, {"guangzhou-2", 13}, {"shenzhen-1", 15},
	} {
		srv := appServer(spec.id)
		backends[spec.id] = srv
		if err := b.Register(gslb.Backend{
			ID: spec.id, URL: srv.URL, DelayMs: spec.delayMs, CapacityRPS: 100,
		}); err != nil {
			panic(err)
		}
	}
	defer func() {
		for _, s := range backends {
			s.Close()
		}
	}()

	router, err := gslb.Serve(b)
	if err != nil {
		panic(err)
	}
	defer router.Close()

	if report {
		// The nearest replica reports high load (as its agent would).
		if _, err := http.Post(router.Addr()+"/report?id=guangzhou-1&load=0.95", "", nil); err != nil {
			panic(err)
		}
	}

	// 60 end users resolve and fetch.
	for i := 0; i < 60; i++ {
		target, _, err := gslb.Resolve(router.Addr())
		if err != nil {
			panic(err)
		}
		resp, err := http.Get(target)
		if err != nil {
			panic(err)
		}
		if _, err := io.ReadAll(resp.Body); err != nil {
			panic(err)
		}
		resp.Body.Close()
	}
	fmt.Printf("  policy %-12s requests per replica: %v\n",
		policy.Name(), b.PickCounts())
}

func main() {
	fmt.Println("DNS/302-style nearest-site routing (today's NEP customers):")
	drive(placement.NearestSite{}, false)
	fmt.Println("Load-aware GSLB after the hot replica reports 95% load:")
	drive(placement.LoadAware{DelaySlackMs: 6}, true)
	fmt.Println("\nNearby edge sites are milliseconds apart (§3.1), so the delay cost")
	fmt.Println("of spreading is negligible while the hot replica is relieved.")
}
