// Cloudgaming: a backend-placement study for a cloud-gaming service — the
// scenario the paper's §3.3.1 motivates. It sweeps the four backend VMs
// (nearest edge plus three clouds), breaks the response delay into stages,
// and evaluates the two server-side optimisations the paper recommends.
package main

import (
	"fmt"

	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/qoe/gaming"
	"edgescope/internal/rng"
)

func main() {
	r := rng.New(7)

	fmt.Println("Backend placement sweep (Flare on Samsung Note 10+, WiFi, 50 runs):")
	for _, backend := range qoe.Backends() {
		cfg := gaming.Config{Access: netmodel.WiFi, Backend: backend}
		sum := gaming.Summarize(gaming.Simulate(r.Fork(backend.Name), cfg, 50))
		verdict := "playable"
		if sum.MedianMs > 100 {
			verdict = "above the 100 ms gamer threshold"
		}
		fmt.Printf("  %-8s median %5.1f ms  p95 %5.1f ms  (%s)\n",
			backend.Name, sum.MedianMs, sum.P95Ms, verdict)
	}

	// Stage breakdown on the edge: the server, not the network, dominates.
	cfg := gaming.Config{Access: netmodel.WiFi}
	sum := gaming.Summarize(gaming.Simulate(r.Fork("breakdown"), cfg, 50))
	b := sum.Breakdown
	fmt.Printf("\nEdge-backend stage breakdown (ms): input %.1f | uplink %.1f | "+
		"server %.1f | encode %.1f | downlink %.1f | decode %.1f | display %.1f\n",
		b.Input, b.Uplink, b.Server, b.Encode, b.Downlink, b.Decode, b.Display)

	// Optimisations: GPU rendering helps; more CPU cores don't.
	gpu := gaming.Summarize(gaming.Simulate(r.Fork("gpu"),
		gaming.Config{Access: netmodel.WiFi, GPURendering: true}, 50))
	cores := gaming.Summarize(gaming.Simulate(r.Fork("cores"),
		gaming.Config{Access: netmodel.WiFi, ServerCores: 32}, 50))
	fmt.Printf("\nGPU rendering: %.1f ms (saves %.1f ms)\n", gpu.MedianMs, sum.MedianMs-gpu.MedianMs)
	fmt.Printf("32 vCPUs:      %.1f ms (single-threaded game loop — no change)\n", cores.MedianMs)
}
