// Livestream: an online-education operator decides how to deploy a live
// streaming pipeline (§3.3.2): edge vs cloud relay, 1080p vs 720p, server
// transcoding, jitter buffering, and player software.
package main

import (
	"fmt"

	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/qoe/streaming"
	"edgescope/internal/rng"
)

func run(r *rng.Source, name string, cfg streaming.Config) streaming.Summary {
	sum := streaming.Summarize(streaming.Simulate(r.Fork(name), cfg, 50))
	fmt.Printf("  %-26s median %6.0f ms  (network %4.0f ms, capture+render %4.0f ms)\n",
		name, sum.MedianMs,
		sum.Breakdown.UplinkNet+sum.Breakdown.DownNet,
		sum.Breakdown.Capture+sum.Breakdown.Render)
	return sum
}

func main() {
	r := rng.New(11)
	base := streaming.Config{Access: netmodel.WiFi, Resolution: streaming.R1080p}

	fmt.Println("Same-city live streaming, WiFi, 50 events per setting:")
	edge := run(r, "edge-1080p", base)

	far := base
	far.Backend = qoe.Backends()[3]
	cloud := run(r, "cloud3-1080p", far)
	fmt.Printf("  -> edge saves %.0f%% of streaming delay (paper: up to 24%%)\n\n",
		100*(1-edge.MedianMs/cloud.MedianMs))

	lower := base
	lower.Resolution = streaming.R720p
	run(r, "edge-720p", lower)

	trans := base
	trans.Transcode = true
	run(r, "edge-1080p+transcode", trans)

	buffered := base
	buffered.JitterBufferMB = 2
	run(r, "edge-1080p+2MB-buffer", buffered)

	ffplay := base
	ffplay.Player, _ = streaming.PlayerByName("FFplay")
	run(r, "edge-1080p+ffplay", ffplay)

	fmt.Println("\nConclusion: the camera/software stack, not the network, bounds the")
	fmt.Println("experience — matching the paper's finding that edge relays alone")
	fmt.Println("cannot make live streaming real-time.")
}
